//! The transition relation: every enabled action, and its deterministic
//! application.
//!
//! All nondeterminism lives in *which* action fires next — each
//! [`Action`] itself is a deterministic state-to-state function, which is
//! what makes schedules replayable and shrinkable. Actions divide into
//! *protocol* actions (the automaton's own moves) and *environment*
//! actions (message arrival, fault, repair): a state counts as deadlocked
//! when work is pending and no **protocol** action is enabled — the
//! environment is never obliged to act.

use std::fmt;

use wavesim_topology::{NodeId, PortDir};

use crate::spec::{ModelCtx, Mutation};
use crate::state::{LaneSt, ModelState, Phase};

/// One atomic move of the protocol automaton or its environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Message `msg` arrives and launches its establishment.
    Inject {
        /// Message index.
        msg: u8,
    },
    /// `msg`'s probe examines the lane behind minimal output `port` at
    /// its current node: reserves and advances when free, otherwise
    /// marks the History Store and stays.
    Scan {
        /// Message index.
        msg: u8,
        /// `PortDir::index()` of the examined output.
        port: u8,
    },
    /// Phase-two claim: `msg`'s probe parks on the held lane behind
    /// `port` and sends the victim a release request.
    Force {
        /// Message index.
        msg: u8,
        /// `PortDir::index()` of the contested output.
        port: u8,
    },
    /// The probe retreats one hop, releasing the last reserved lane.
    Backtrack {
        /// Message index.
        msg: u8,
    },
    /// The probe, back at its source with this switch exhausted, moves to
    /// the next untried switch / enters phase two / gives up.
    NextSwitch {
        /// Message index.
        msg: u8,
    },
    /// A parked probe acquires its (now free) lane and advances.
    Resume {
        /// Message index.
        msg: u8,
    },
    /// A parked probe abandons its (now faulty) lane and resumes the
    /// search.
    Unpark {
        /// Message index.
        msg: u8,
    },
    /// A parked probe re-issues its release request to the lane's new
    /// `Ready` holder (the original victim is gone — the concurrent
    /// release was discarded, §4).
    Reforce {
        /// Message index.
        msg: u8,
    },
    /// The acknowledgment walks one hop back toward the source.
    AckStep {
        /// Message index.
        msg: u8,
    },
    /// The message crosses its established circuit (or the wormhole
    /// fall-back plane) and is delivered.
    Deliver {
        /// Message index.
        msg: u8,
    },
    /// CARP releases the circuit after use (explicit teardown).
    Teardown {
        /// Message index.
        msg: u8,
    },
    /// A tearing circuit releases its next lane, front to back.
    TeardownStep {
        /// Message index.
        msg: u8,
    },
    /// The spec's armed lane fault fires.
    Fault,
    /// The faulted lane returns to service.
    Repair,
}

impl Action {
    /// True for the automaton's own moves (a pending-work state where
    /// none of these is enabled is deadlocked).
    #[must_use]
    pub fn is_protocol(self) -> bool {
        !matches!(self, Action::Inject { .. } | Action::Fault | Action::Repair)
    }

    /// The message this action belongs to, if any.
    #[must_use]
    pub fn msg(self) -> Option<u8> {
        match self {
            Action::Inject { msg }
            | Action::Scan { msg, .. }
            | Action::Force { msg, .. }
            | Action::Backtrack { msg }
            | Action::NextSwitch { msg }
            | Action::Resume { msg }
            | Action::Unpark { msg }
            | Action::Reforce { msg }
            | Action::AckStep { msg }
            | Action::Deliver { msg }
            | Action::Teardown { msg }
            | Action::TeardownStep { msg } => Some(msg),
            Action::Fault | Action::Repair => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Inject { msg } => write!(f, "inject m{msg}"),
            Action::Scan { msg, port } => write!(f, "scan m{msg} port{port}"),
            Action::Force { msg, port } => write!(f, "force m{msg} port{port}"),
            Action::Backtrack { msg } => write!(f, "backtrack m{msg}"),
            Action::NextSwitch { msg } => write!(f, "next-switch m{msg}"),
            Action::Resume { msg } => write!(f, "resume m{msg}"),
            Action::Unpark { msg } => write!(f, "unpark m{msg}"),
            Action::Reforce { msg } => write!(f, "reforce m{msg}"),
            Action::AckStep { msg } => write!(f, "ack m{msg}"),
            Action::Deliver { msg } => write!(f, "deliver m{msg}"),
            Action::Teardown { msg } => write!(f, "teardown m{msg}"),
            Action::TeardownStep { msg } => write!(f, "teardown-step m{msg}"),
            Action::Fault => write!(f, "fault"),
            Action::Repair => write!(f, "repair"),
        }
    }
}

fn bit(port: PortDir) -> u8 {
    1u8 << port.index()
}

/// Every action enabled in `s`, in a deterministic order (message index,
/// then action kind, then port) — the explorer's successor order and the
/// fuzzer's choice domain both come from here.
#[must_use]
pub fn enabled(ctx: &ModelCtx, s: &ModelState) -> Vec<Action> {
    let mut acts = Vec::new();
    let force_allowed = ctx.spec.protocol.force_enabled();
    for (i, c) in s.circs.iter().enumerate() {
        let m = i as u8;
        match c.phase {
            Phase::Pending => acts.push(Action::Inject { msg: m }),
            Phase::Probing(ref p) => {
                if let Some(lane) = p.parked {
                    match s.lanes[lane as usize] {
                        LaneSt::Free => acts.push(Action::Resume { msg: m }),
                        LaneSt::Faulty => acts.push(Action::Unpark { msg: m }),
                        LaneSt::Held(v) => {
                            // The original victim released and someone else
                            // re-reserved the lane: re-issue the request if
                            // the new holder is an eligible (Ready) victim.
                            // Under DropRelease the request is lost again —
                            // no transition.
                            let victim_ready = matches!(s.circs[v as usize].phase, Phase::Ready);
                            if p.force && victim_ready && ctx.spec.mutation != Mutation::DropRelease
                            {
                                acts.push(Action::Reforce { msg: m });
                            }
                        }
                    }
                } else {
                    let at = NodeId(u32::from(p.at));
                    let dest = ctx.spec.msgs[i].1;
                    let mut stuck_here = true;
                    for port in ctx.spec.topo.min_ports(at, dest) {
                        if p.history[p.at as usize] & bit(port) != 0 {
                            continue;
                        }
                        stuck_here = false;
                        let lane = ctx
                            .lane_of(at, port, p.switch)
                            .expect("minimal ports always have a physical link");
                        let pick = match s.lanes[lane as usize] {
                            LaneSt::Held(v) if p.force => {
                                let vph = &s.circs[v as usize].phase;
                                let eligible = matches!(vph, Phase::Ready)
                                    || (ctx.spec.mutation == Mutation::WaitEstablishing
                                        && matches!(vph, Phase::Probing(_) | Phase::Acking { .. }));
                                if eligible && force_allowed {
                                    Action::Force {
                                        msg: m,
                                        port: port.index() as u8,
                                    }
                                } else {
                                    Action::Scan {
                                        msg: m,
                                        port: port.index() as u8,
                                    }
                                }
                            }
                            _ => Action::Scan {
                                msg: m,
                                port: port.index() as u8,
                            },
                        };
                        acts.push(pick);
                    }
                    if stuck_here {
                        if c.path.is_empty() {
                            acts.push(Action::NextSwitch { msg: m });
                        } else {
                            acts.push(Action::Backtrack { msg: m });
                        }
                    }
                }
            }
            Phase::Acking { .. } => acts.push(Action::AckStep { msg: m }),
            Phase::Ready => {
                if !c.delivered {
                    acts.push(Action::Deliver { msg: m });
                } else if !ctx.spec.protocol.is_clrp() {
                    acts.push(Action::Teardown { msg: m });
                }
            }
            Phase::Tearing { .. } => acts.push(Action::TeardownStep { msg: m }),
            Phase::Wormhole => {
                if !c.delivered {
                    acts.push(Action::Deliver { msg: m });
                }
            }
            Phase::Closed => {}
        }
    }
    if let Some(f) = ctx.spec.fault {
        if !s.fault_fired {
            acts.push(Action::Fault);
        } else if f.repair && !s.repaired {
            acts.push(Action::Repair);
        }
    }
    acts
}

/// Applies `a` to `s`, returning the successor. `a` must be enabled in
/// `s` (the explorer and the fuzzer only feed enabled actions; the
/// shrinker re-checks enabledness before calling).
///
/// # Panics
/// Panics (in debug builds, plus a few unconditional `expect`s) when `a`
/// is not actually enabled — a disabled action has no defined successor.
#[must_use]
pub fn apply(ctx: &ModelCtx, s: &ModelState, a: Action) -> ModelState {
    let mut n = s.clone();
    match a {
        Action::Inject { msg } => {
            n.circs[msg as usize].phase = Phase::Probing(ModelState::fresh_probe(ctx, msg));
        }
        Action::Scan { msg, port } => {
            let dest = ctx.spec.msgs[msg as usize].1;
            let c = &mut n.circs[msg as usize];
            let Phase::Probing(ref mut p) = c.phase else {
                unreachable!("scan on a non-probing circuit")
            };
            let pd = PortDir::from_index(usize::from(port));
            let at = NodeId(u32::from(p.at));
            let lane = ctx.lane_of(at, pd, p.switch).expect("scan on a boundary");
            p.history[p.at as usize] |= bit(pd);
            if s.lanes[lane as usize] == LaneSt::Free {
                n.lanes[lane as usize] = LaneSt::Held(msg);
                c.path.push(lane);
                p.at = ctx.lane_dest(lane).0 as u8;
                if NodeId(u32::from(p.at)) == dest {
                    let left = c.path.len() as u8;
                    c.phase = Phase::Acking { left };
                }
            }
        }
        Action::Force { msg, port } => {
            let Phase::Probing(ref p) = s.circs[msg as usize].phase else {
                unreachable!("force on a non-probing circuit")
            };
            let pd = PortDir::from_index(usize::from(port));
            let at = NodeId(u32::from(p.at));
            let lane = ctx.lane_of(at, pd, p.switch).expect("force on a boundary");
            let LaneSt::Held(v) = s.lanes[lane as usize] else {
                unreachable!("force on an unheld lane")
            };
            if let Phase::Probing(ref mut p) = n.circs[msg as usize].phase {
                p.parked = Some(lane);
            }
            // The release request reaches the victim unless this run
            // deliberately drops it; an Establishing victim (only
            // eligible under WaitEstablishing) is not released at all —
            // the probe just waits, which is exactly the bug.
            let victim_ready = matches!(s.circs[v as usize].phase, Phase::Ready);
            if victim_ready && ctx.spec.mutation != Mutation::DropRelease {
                n.circs[v as usize].phase = Phase::Tearing { freed: 0 };
            }
        }
        Action::Reforce { msg } => {
            let Phase::Probing(ref p) = s.circs[msg as usize].phase else {
                unreachable!("reforce on a non-probing circuit")
            };
            let lane = p.parked.expect("reforce needs a parked probe");
            let LaneSt::Held(v) = s.lanes[lane as usize] else {
                unreachable!("reforce on an unheld lane")
            };
            n.circs[v as usize].phase = Phase::Tearing { freed: 0 };
        }
        Action::Backtrack { msg } => {
            let c = &mut n.circs[msg as usize];
            let lane = c.path.pop().expect("backtrack with an empty path");
            n.lanes[lane as usize] = LaneSt::Free;
            let (src, _, _) = ctx.lane_endpoints(lane);
            let Phase::Probing(ref mut p) = c.phase else {
                unreachable!("backtrack on a non-probing circuit")
            };
            p.at = src.0 as u8;
        }
        Action::NextSwitch { msg } => {
            let all = ctx.all_switches();
            let force_allowed = ctx.spec.protocol.force_enabled();
            let c = &mut n.circs[msg as usize];
            let Phase::Probing(ref mut p) = c.phase else {
                unreachable!("next-switch on a non-probing circuit")
            };
            debug_assert!(c.path.is_empty(), "switch change away from the source");
            p.tried |= 1 << (p.switch - 1);
            if p.tried != all {
                let k = ctx.spec.k;
                let mut next = p.switch % k + 1;
                while p.tried & (1 << (next - 1)) != 0 {
                    next = next % k + 1;
                }
                p.switch = next;
                p.history.iter_mut().for_each(|h| *h = 0);
            } else if !p.force && force_allowed {
                // Phase two: same staggered sweep, Force bit set.
                let (src, _) = ctx.spec.msgs[msg as usize];
                p.force = true;
                p.tried = 0;
                p.switch = ctx.initial_switch(src);
                p.history.iter_mut().for_each(|h| *h = 0);
            } else if ctx.spec.mutation == Mutation::SkipBackoff {
                // The bug: relaunch from scratch instead of backing off
                // to the wormhole escape path. The cleared History Store
                // voids the finite-search argument.
                c.phase = Phase::Probing(ModelState::fresh_probe(ctx, msg));
            } else {
                c.phase = Phase::Wormhole;
            }
        }
        Action::Resume { msg } => {
            let dest = ctx.spec.msgs[msg as usize].1;
            let c = &mut n.circs[msg as usize];
            let Phase::Probing(ref mut p) = c.phase else {
                unreachable!("resume on a non-probing circuit")
            };
            let lane = p.parked.take().expect("resume needs a parked probe");
            debug_assert_eq!(s.lanes[lane as usize], LaneSt::Free);
            n.lanes[lane as usize] = LaneSt::Held(msg);
            let (_, port, _) = ctx.lane_endpoints(lane);
            p.history[p.at as usize] |= bit(port);
            c.path.push(lane);
            p.at = ctx.lane_dest(lane).0 as u8;
            if NodeId(u32::from(p.at)) == dest {
                let left = c.path.len() as u8;
                c.phase = Phase::Acking { left };
            }
        }
        Action::Unpark { msg } => {
            let c = &mut n.circs[msg as usize];
            let Phase::Probing(ref mut p) = c.phase else {
                unreachable!("unpark on a non-probing circuit")
            };
            let lane = p.parked.take().expect("unpark needs a parked probe");
            debug_assert_eq!(s.lanes[lane as usize], LaneSt::Faulty);
            let (_, port, _) = ctx.lane_endpoints(lane);
            p.history[p.at as usize] |= bit(port);
        }
        Action::AckStep { msg } => {
            let c = &mut n.circs[msg as usize];
            let Phase::Acking { left } = c.phase else {
                unreachable!("ack-step on a non-acking circuit")
            };
            c.phase = if left <= 1 {
                Phase::Ready
            } else {
                Phase::Acking { left: left - 1 }
            };
        }
        Action::Deliver { msg } => {
            n.circs[msg as usize].delivered = true;
        }
        Action::Teardown { msg } => {
            n.circs[msg as usize].phase = Phase::Tearing { freed: 0 };
        }
        Action::TeardownStep { msg } => {
            let c = &mut n.circs[msg as usize];
            let Phase::Tearing { freed } = c.phase else {
                unreachable!("teardown-step on a non-tearing circuit")
            };
            let lane = c.path[usize::from(freed)];
            // Release only what this circuit still holds: a lane lost to
            // a fault stays Faulty, and once repaired it may already be
            // Free or re-reserved by another probe.
            if n.lanes[lane as usize] == LaneSt::Held(msg) {
                n.lanes[lane as usize] = LaneSt::Free;
            }
            let freed = freed + 1;
            if usize::from(freed) == c.path.len() {
                c.path.clear();
                c.phase = if c.delivered {
                    Phase::Closed
                } else if ctx.spec.protocol.is_clrp() && c.retries > 0 {
                    // The RetryWait path: relaunch the establishment.
                    c.retries -= 1;
                    Phase::Probing(ModelState::fresh_probe(ctx, msg))
                } else {
                    Phase::Wormhole
                };
            } else {
                c.phase = Phase::Tearing { freed };
            }
        }
        Action::Fault => {
            let f = ctx.spec.fault.expect("fault action without a fault spec");
            n.fault_fired = true;
            let prev = n.lanes[f.lane as usize];
            n.lanes[f.lane as usize] = LaneSt::Faulty;
            if let LaneSt::Held(v) = prev {
                // Evict the holder; teardown releases the rest of its
                // path and the completion rule decides retry vs escape.
                match n.circs[v as usize].phase {
                    Phase::Tearing { .. } => {}
                    _ => n.circs[v as usize].phase = Phase::Tearing { freed: 0 },
                }
            }
        }
        Action::Repair => {
            let f = ctx.spec.fault.expect("repair action without a fault spec");
            debug_assert_eq!(s.lanes[f.lane as usize], LaneSt::Faulty);
            n.lanes[f.lane as usize] = LaneSt::Free;
            n.repaired = true;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelProtocol, ModelSpec};
    use wavesim_topology::Topology;

    fn two_msg_ctx(protocol: ModelProtocol, k: u8) -> ModelCtx {
        ModelSpec::new(Topology::mesh(&[2, 2]), protocol, k)
            .msg(0, 3)
            .msg(3, 0)
            .compile()
    }

    /// Drives the only-enabled-action path to completion; panics on
    /// branching so tests stay focused on deterministic corridors.
    fn run_single(ctx: &ModelCtx, mut s: ModelState, cap: u32) -> ModelState {
        for _ in 0..cap {
            let acts = enabled(ctx, &s);
            if acts.is_empty() {
                return s;
            }
            s = apply(ctx, &s, acts[0]);
        }
        panic!("no quiescence within {cap} steps");
    }

    #[test]
    fn one_message_establishes_and_delivers() {
        let ctx = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 3)
            .compile();
        let s = run_single(&ctx, ModelState::initial(&ctx), 100);
        assert!(s.all_delivered());
        assert!(matches!(s.circs[0].phase, Phase::Ready), "CLRP caches");
        assert_eq!(s.circs[0].path.len(), 2, "two-hop circuit held");
        assert!(s.consistent(&ctx).is_ok());
    }

    #[test]
    fn carp_tears_down_after_delivery() {
        let ctx = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Carp, 1)
            .msg(0, 3)
            .compile();
        let s = run_single(&ctx, ModelState::initial(&ctx), 100);
        assert!(s.all_delivered());
        assert!(matches!(s.circs[0].phase, Phase::Closed), "CARP releases");
        assert!(s.lanes.iter().all(|&l| l == LaneSt::Free));
    }

    #[test]
    fn enabled_order_is_deterministic() {
        let ctx = two_msg_ctx(ModelProtocol::Clrp, 2);
        let s = ModelState::initial(&ctx);
        assert_eq!(enabled(&ctx, &s), enabled(&ctx, &s));
        assert_eq!(
            enabled(&ctx, &s),
            vec![Action::Inject { msg: 0 }, Action::Inject { msg: 1 }]
        );
    }

    #[test]
    fn faulted_lane_evicts_and_clrp_retries() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 3)
            .fault_on_first_path(false);
        let ctx = spec.compile();
        // Establish fully, then fire the fault.
        let mut s = ModelState::initial(&ctx);
        loop {
            let acts = enabled(&ctx, &s);
            let Some(&a) = acts
                .iter()
                .find(|a| a.is_protocol() || matches!(a, Action::Inject { .. }))
            else {
                break;
            };
            s = apply(&ctx, &s, a);
            if matches!(s.circs[0].phase, Phase::Ready) {
                break;
            }
        }
        assert!(matches!(s.circs[0].phase, Phase::Ready));
        let s = apply(&ctx, &s, Action::Fault);
        assert!(matches!(s.circs[0].phase, Phase::Tearing { .. }));
        let end = run_single(&ctx, s, 200);
        assert!(end.all_delivered(), "retry or wormhole still delivers");
        assert!(end.consistent(&ctx).is_ok());
    }
}
