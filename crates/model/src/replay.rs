//! Concrete replay: drives a counterexample schedule through the real
//! [`wavesim_core::WaveNetwork`] and captures the run as a trace.
//!
//! The abstract schedule's *stimulus* actions (injections, CARP
//! teardowns, fault/repair events) are the only ones a workload can
//! actually issue; everything else (probing, backtracking, acking) is
//! protocol-internal and happens on the real network's own clock. The
//! replay therefore maps each stimulus to the matching `WaveNetwork`
//! call, spaced a few cycles apart in schedule order, then lets the
//! network drain.
//!
//! For a counterexample produced under a [`crate::spec::Mutation`] the
//! real network is expected to *survive* the same stimulus sequence —
//! the production code does not contain the mutation. The emitted trace
//! still documents the violating scenario concretely (which messages,
//! which lanes, which fault), in both JSONL and `WSTRACE1` columnar
//! form, and is accepted by the repo's trace tooling
//! (`wavesim validate-trace`).

use wavesim_core::{FaultEvent, LaneId, ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_network::Message;
use wavesim_trace::{stream, ColumnarBuf, TraceRecord, TraceSink, VecSink};
use wavesim_verify::wave_measure;

use crate::spec::{ModelProtocol, ModelSpec};
use crate::step::Action;

/// Cycles between consecutive schedule slots. Generous enough for a
/// control flit to cross a 2x2..4x4 fabric between stimuli.
const SPACING: u64 = 8;

/// Drain budget after the last stimulus.
const DRAIN: u64 = 50_000;

/// Outcome of replaying a schedule on the real network.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Every trace record the run emitted, in sequence order.
    pub records: Vec<TraceRecord>,
    /// Messages handed to `WaveNetwork::send`.
    pub injected: u64,
    /// Messages the network delivered (circuit or wormhole).
    pub delivered: u64,
    /// True when the network went idle within the drain budget.
    pub drained: bool,
    /// Cycles simulated.
    pub cycles: u64,
}

impl Replay {
    /// True when the real network survived the schedule: drained with
    /// every injected message delivered. Expected for mutation-derived
    /// counterexamples (the mutation lives only in the model).
    #[must_use]
    pub fn survived(&self) -> bool {
        self.drained && self.delivered == self.injected
    }

    /// The capture as JSONL (one record per line), accepted by
    /// `wavesim_trace::stream::read_jsonl` and `wavesim validate-trace`.
    #[must_use]
    pub fn jsonl(&self) -> String {
        let mut buf = String::new();
        for rec in &self.records {
            stream::encode_record(&mut buf, rec);
            buf.push('\n');
        }
        buf
    }

    /// The capture as a `WSTRACE1` columnar byte stream, accepted by
    /// `wavesim_trace::read_columnar` and `wavesim validate-trace`.
    #[must_use]
    pub fn columnar(&self) -> Vec<u8> {
        let mut buf = ColumnarBuf::new();
        buf.record_many(&self.records);
        buf.into_bytes()
    }
}

/// Builds the real-network configuration matching a model spec.
fn config_of(spec: &ModelSpec) -> WaveConfig {
    let mut cfg = WaveConfig {
        k: spec.k,
        protocol: match spec.protocol {
            ModelProtocol::Carp => ProtocolKind::Carp,
            ModelProtocol::Clrp | ModelProtocol::ClrpNoForce => ProtocolKind::Clrp,
        },
        fault_retries: spec.retries,
        ..WaveConfig::default()
    };
    if spec.protocol == ModelProtocol::ClrpNoForce {
        cfg.clrp.enable_force = false;
    }
    cfg
}

/// Replays `schedule` through a real [`WaveNetwork`] built from `spec`,
/// with a trace sink armed for the whole run.
#[must_use]
pub fn replay_schedule(spec: &ModelSpec, schedule: &[Action]) -> Replay {
    let ctx = spec.compile();
    let mut net = WaveNetwork::new(spec.topo.clone(), config_of(spec));
    net.install_trace_sink(Box::new(VecSink::new()));

    let mut now: u64 = 0;
    let fault_lane = spec.fault.map(|f| {
        let switch = (f.lane % u16::from(spec.k)) as u8 + 1;
        LaneId::new(ctx.link_of(f.lane), switch)
    });
    for a in schedule {
        match *a {
            Action::Inject { msg } => {
                let (src, dest) = spec.msgs[msg as usize];
                if spec.protocol == ModelProtocol::Carp {
                    net.carp_establish(now, src, dest);
                }
                net.send(now, Message::new(u64::from(msg), src, dest, 16, now));
            }
            Action::Teardown { msg } => {
                let (src, dest) = spec.msgs[msg as usize];
                net.carp_teardown(now, src, dest);
            }
            Action::Fault => {
                let lane = fault_lane.expect("Fault action requires an armed fault");
                net.schedule_fault(now, FaultEvent::Fail(lane))
                    .expect("fault in the future");
            }
            Action::Repair => {
                let lane = fault_lane.expect("Repair action requires an armed fault");
                net.schedule_fault(now, FaultEvent::Repair(lane))
                    .expect("repair in the future");
            }
            // Protocol-internal: the real network performs these on its
            // own; the slot's SPACING cycles give it time to.
            _ => {}
        }
        for _ in 0..SPACING {
            net.tick(now);
            now += 1;
        }
    }
    let deadline = now + DRAIN;
    while net.busy() && now < deadline {
        net.tick(now);
        now += 1;
    }
    let drained = !net.busy();
    let m = wave_measure(&net);
    let records = net
        .take_trace_sink()
        .expect("sink installed above")
        .snapshot();
    Replay {
        records,
        injected: m.injected,
        delivered: m.delivered,
        drained,
        cycles: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::check;
    use crate::spec::{ModelProtocol, Mutation};
    use wavesim_topology::Topology;
    use wavesim_trace::{read_columnar, stream::read_jsonl};

    #[test]
    fn drop_release_counterexample_replays_and_round_trips() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 1)
            .msg(2, 3)
            .msg(0, 3)
            .mutate(Mutation::DropRelease);
        let cx = check(&spec, 2_000_000)
            .violation
            .expect("drop-release deadlocks in the model");
        let rep = replay_schedule(&spec, &cx.schedule);
        // The real protocol does not drop releases: it must survive.
        assert!(rep.survived(), "{rep:?}");
        assert!(rep.injected >= 1);
        assert!(!rep.records.is_empty(), "trace captured");
        let jl = read_jsonl(&rep.jsonl()).expect("JSONL round-trips");
        assert_eq!(jl.len(), rep.records.len());
        let col = read_columnar(&rep.columnar()).expect("columnar round-trips");
        assert_eq!(col.len(), rep.records.len());
    }

    #[test]
    fn carp_schedule_with_fault_replays() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Carp, 1)
            .msg(0, 3)
            .msg(3, 0)
            .fault_on_first_path(true);
        let out = check(&spec, 2_000_000);
        assert!(out.proved(), "{}", out.verdict());
        // No violation: replay the all-messages schedule by hand.
        let schedule: Vec<Action> = (0..spec.msgs.len() as u8)
            .map(|m| Action::Inject { msg: m })
            .chain([Action::Fault, Action::Repair])
            .collect();
        let rep = replay_schedule(&spec, &schedule);
        assert!(rep.survived(), "{rep:?}");
        assert_eq!(rep.injected, 2);
    }
}
