//! Exhaustive exploration: BFS over every interleaving, deadlock and
//! livelock verdicts, counterexample extraction.
//!
//! * **Deadlock** — a reachable state with pending work where no
//!   *protocol* action is enabled (the environment is never obliged to
//!   act). Every state with parked probes is additionally cross-checked
//!   with [`wavesim_verify::deadlock::find_wait_cycle`]: a circular wait
//!   is reported as a deadlock even before the rest of the system
//!   freezes, and the extracted cycle names the contested lanes. The two
//!   detectors are complementary — `drop-release` strands a probe with
//!   *no* cycle (lost wakeup), `wait-establishing` builds a genuine
//!   4-cycle.
//! * **Livelock** — a lasso: a reachable cycle through states with
//!   pending work. Every component of the shared
//!   [`wavesim_verify::ProgressMeasure`] is nondecreasing along every
//!   transition, so any cycle lives entirely inside one rank layer; the
//!   search therefore restricts itself to rank-preserving edges, finds
//!   strongly connected components there (first DFS pass), and extracts
//!   a concrete cycle from an offending component (second, nested DFS
//!   pass).
//!
//! BFS means extracted stems are shortest; the frontier is kept inside
//! the [`Explorer`] so a budget-capped run can be resumed (checkpointing)
//! by calling [`Explorer::run`] again with a larger budget.

use std::collections::{HashMap, VecDeque};

use wavesim_topology::RoutingKind;
use wavesim_verify::deadlock::find_wait_cycle;

use crate::spec::ModelSpec;
use crate::state::ModelState;
use crate::step::{apply, enabled, Action};
use crate::ModelCtx;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Pending work, no enabled protocol action. When the stuck state's
    /// wait-for graph is cyclic the cycle is attached (`(circuit, dense
    /// lane)` pairs, as returned by `find_wait_cycle`).
    Deadlock {
        /// The circular wait, if one exists (a lost-wakeup deadlock has
        /// none).
        wait_cycle: Option<Vec<(u32, u16)>>,
    },
    /// A reachable cycle through states with pending work.
    Livelock,
}

impl ViolationKind {
    /// Short verdict tag for CLI output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::Deadlock { .. } => "deadlock",
            ViolationKind::Livelock => "livelock",
        }
    }
}

/// A violating schedule, replayable through [`crate::step::apply`] (and,
/// concretely, through the real network via [`crate::replay`]).
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The property violated.
    pub kind: ViolationKind,
    /// Actions from the initial state to the violation. For a livelock
    /// the tail from [`Self::loop_start`] onward is the repeatable cycle.
    pub schedule: Vec<Action>,
    /// Start of the lasso loop within `schedule` (livelock only).
    pub loop_start: Option<usize>,
    /// Digest of the violating (deadlock) / loop-entry (livelock) state.
    pub fingerprint: u64,
}

impl Counterexample {
    /// Human-readable one-action-per-line rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, a) in self.schedule.iter().enumerate() {
            if Some(i) == self.loop_start {
                out.push_str("--- loop ---\n");
            }
            out.push_str(&format!("{i:4}  {a}\n"));
        }
        out
    }
}

/// The verdict of an exploration.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Distinct states explored.
    pub states: u64,
    /// Transitions taken (edges).
    pub transitions: u64,
    /// Maximum BFS depth reached.
    pub depth: u32,
    /// True when the state budget ran out before the frontier drained —
    /// verdicts are then only valid for the explored prefix.
    pub truncated: bool,
    /// States whose wait-for graph was checked (those with parked
    /// probes).
    pub wait_checked: u64,
    /// The wormhole fall-back plane's CDG certificate — the escape
    /// oracle the abstraction leans on.
    pub fallback_certified: bool,
    /// The violation, if any.
    pub violation: Option<Counterexample>,
}

impl CheckOutcome {
    /// True when the run proves the properties (complete and clean).
    #[must_use]
    pub fn proved(&self) -> bool {
        !self.truncated && self.violation.is_none() && self.fallback_certified
    }

    /// The CLI verdict line.
    #[must_use]
    pub fn verdict(&self) -> String {
        match &self.violation {
            Some(cx) => format!(
                "VIOLATION ({}): counterexample of {} steps (fingerprint {:#018x})",
                cx.kind.name(),
                cx.schedule.len(),
                cx.fingerprint
            ),
            None if self.truncated => format!(
                "INCONCLUSIVE: state budget exhausted after {} states (frontier not drained)",
                self.states
            ),
            None => format!(
                "PROVED deadlock- and livelock-free: {} states, {} transitions, depth {}{}",
                self.states,
                self.transitions,
                self.depth,
                if self.fallback_certified {
                    ""
                } else {
                    " (WARNING: fall-back routing not certified)"
                }
            ),
        }
    }
}

/// Exhaustive BFS explorer with a resumable frontier.
pub struct Explorer {
    ctx: ModelCtx,
    index: HashMap<ModelState, u32>,
    states: Vec<ModelState>,
    parent: Vec<Option<(u32, Action)>>,
    depth: Vec<u32>,
    edges: Vec<(u32, u32, Action)>,
    frontier: VecDeque<u32>,
    transitions: u64,
    wait_checked: u64,
    max_depth: u32,
    fallback_certified: bool,
    violation: Option<(u32, ViolationKind)>,
    truncated: bool,
}

impl Explorer {
    /// Sets up exploration of `spec` from the initial state.
    #[must_use]
    pub fn new(spec: &ModelSpec) -> Self {
        let ctx = spec.compile();
        // The model treats the wormhole plane as a reliable escape; that
        // is only sound because the fall-back routing function carries a
        // CDG certificate. Re-establish it here instead of assuming it.
        let w = 2;
        let routing = RoutingKind::Deterministic.build(&ctx.spec.topo, w);
        let fallback_certified =
            wavesim_verify::check_deadlock_freedom(&ctx.spec.topo, routing.as_ref()).deadlock_free;
        let init = ModelState::initial(&ctx);
        let mut index = HashMap::new();
        index.insert(init.clone(), 0u32);
        Explorer {
            ctx,
            index,
            states: vec![init],
            parent: vec![None],
            depth: vec![0],
            edges: Vec::new(),
            frontier: VecDeque::from([0u32]),
            transitions: 0,
            wait_checked: 0,
            max_depth: 0,
            fallback_certified,
            violation: None,
            truncated: false,
        }
    }

    /// The compiled context (for replay and reporting).
    #[must_use]
    pub fn ctx(&self) -> &ModelCtx {
        &self.ctx
    }

    /// Explores until the frontier drains, a violation is found, or the
    /// seen-set reaches `max_states`. Returns `true` when exploration is
    /// complete (drained or violated); `false` means the budget ran out
    /// and the frontier is checkpointed — call again with a larger budget
    /// to resume.
    pub fn run(&mut self, max_states: u64) -> bool {
        self.truncated = false;
        while let Some(u) = self.frontier.pop_front() {
            let acts = enabled(&self.ctx, &self.states[u as usize]);
            let state = &self.states[u as usize];

            // Deadlock: pending work, no protocol action.
            if state.has_pending_work() && !acts.iter().any(|a| a.is_protocol()) {
                let cycle = find_wait_cycle(&state.wait_edges()).map(strip_cycle);
                self.violation = Some((u, ViolationKind::Deadlock { wait_cycle: cycle }));
                return true;
            }
            // Circular-wait cross-check: a cycle among parked probes is a
            // deadlock even while unrelated circuits still have moves.
            let waits = state.wait_edges();
            if !waits.is_empty() {
                self.wait_checked += 1;
                if let Some(cycle) = find_wait_cycle(&waits) {
                    self.violation = Some((
                        u,
                        ViolationKind::Deadlock {
                            wait_cycle: Some(strip_cycle(cycle)),
                        },
                    ));
                    return true;
                }
            }

            for a in acts {
                let next = apply(&self.ctx, &self.states[u as usize], a);
                self.transitions += 1;
                let v = match self.index.get(&next) {
                    Some(&v) => v,
                    None => {
                        let v = u32::try_from(self.states.len()).expect("state count");
                        self.index.insert(next.clone(), v);
                        self.states.push(next);
                        self.parent.push(Some((u, a)));
                        let d = self.depth[u as usize] + 1;
                        self.depth.push(d);
                        self.max_depth = self.max_depth.max(d);
                        self.frontier.push_back(v);
                        v
                    }
                };
                self.edges.push((u, v, a));
            }
            if self.states.len() as u64 >= max_states && !self.frontier.is_empty() {
                self.truncated = true;
                return false;
            }
        }
        true
    }

    /// The schedule from the initial state to `target`.
    fn stem(&self, target: u32) -> Vec<Action> {
        let mut acts = Vec::new();
        let mut at = target;
        while let Some((p, a)) = self.parent[at as usize] {
            acts.push(a);
            at = p;
        }
        acts.reverse();
        acts
    }

    /// Lasso search over rank-preserving edges (see module docs). Only
    /// meaningful after a complete, deadlock-free run.
    fn find_lasso(&self) -> Option<(u32, Vec<Action>)> {
        let n = self.states.len();
        let ranks: Vec<u64> = self
            .states
            .iter()
            .map(|s| s.measure(&self.ctx).rank())
            .collect();
        // Adjacency restricted to rank-constant edges — the only edges a
        // cycle can use, because the measure never decreases.
        let mut adj = vec![Vec::new(); n];
        for &(u, v, a) in &self.edges {
            if u != v && ranks[u as usize] == ranks[v as usize] {
                adj[u as usize].push((v, a));
            }
        }
        // Pass one: iterative Tarjan SCC.
        let sccs = tarjan(&adj);
        let mut comp = vec![u32::MAX; n];
        for (ci, scc) in sccs.iter().enumerate() {
            for &s in scc {
                comp[s as usize] = ci as u32;
            }
        }
        for scc in &sccs {
            if scc.len() < 2 {
                continue; // single state, no self-loops (apply never no-ops)
            }
            // Pending-work flags are constant across an SCC (each flag is
            // monotone, and SCC members are mutually reachable).
            let probe = scc[0];
            if !self.states[probe as usize].has_pending_work() {
                continue;
            }
            // Pass two: nested DFS inside the component to extract a
            // concrete cycle through its BFS-shallowest member.
            let entry = *scc
                .iter()
                .min_by_key(|&&s| self.depth[s as usize])
                .expect("non-empty SCC");
            let cycle = cycle_through(&adj, &comp, entry).expect("SCC of size ≥ 2 has a cycle");
            return Some((entry, cycle));
        }
        None
    }

    /// Finishes the run: verdicts, counts, counterexample.
    #[must_use]
    pub fn into_outcome(self) -> CheckOutcome {
        let violation = match &self.violation {
            Some((at, kind)) => Some(Counterexample {
                kind: kind.clone(),
                schedule: self.stem(*at),
                loop_start: None,
                fingerprint: self.states[*at as usize].fingerprint(),
            }),
            None if !self.truncated => self.find_lasso().map(|(entry, cycle)| {
                let mut schedule = self.stem(entry);
                let loop_start = schedule.len();
                schedule.extend(cycle);
                Counterexample {
                    kind: ViolationKind::Livelock,
                    schedule,
                    loop_start: Some(loop_start),
                    fingerprint: self.states[entry as usize].fingerprint(),
                }
            }),
            None => None,
        };
        CheckOutcome {
            states: self.states.len() as u64,
            transitions: self.transitions,
            depth: self.max_depth,
            truncated: self.truncated,
            wait_checked: self.wait_checked,
            fallback_certified: self.fallback_certified,
            violation,
        }
    }
}

/// `find_wait_cycle` keys are `(u32, u16)` pairs already; strip nothing
/// but give the conversion a name so the format is documented in one
/// place: `(circuit attempt, dense lane)`.
fn strip_cycle(cycle: Vec<(u32, u16)>) -> Vec<(u32, u16)> {
    cycle
}

/// Iterative Tarjan over a compact adjacency list. Returns SCCs in
/// reverse topological order; order is irrelevant here.
fn tarjan(adj: &[Vec<(u32, Action)>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();
    // Explicit call stack of (node, next-child cursor); a node's index is
    // assigned at push time so it is pushed exactly once.
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        call.push((root, 0));
        while let Some(&(v, cursor)) = call.last() {
            let vi = v as usize;
            if let Some(&(w, _)) = adj[vi].get(cursor) {
                call.last_mut().expect("frame just read").1 += 1;
                let wi = w as usize;
                if index[wi] == u32::MAX {
                    index[wi] = next_index;
                    low[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    call.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// DFS restricted to `entry`'s component, returning the action labels of
/// a cycle `entry → … → entry`.
fn cycle_through(adj: &[Vec<(u32, Action)>], comp: &[u32], entry: u32) -> Option<Vec<Action>> {
    let target_comp = comp[entry as usize];
    let mut visited = vec![false; adj.len()];
    // (node, path-of-actions)
    let mut stack: Vec<(u32, Vec<Action>)> = vec![(entry, Vec::new())];
    while let Some((v, path)) = stack.pop() {
        for &(w, a) in &adj[v as usize] {
            if comp[w as usize] != target_comp {
                continue;
            }
            if w == entry {
                let mut cycle = path.clone();
                cycle.push(a);
                return Some(cycle);
            }
            if !visited[w as usize] {
                visited[w as usize] = true;
                let mut p = path.clone();
                p.push(a);
                stack.push((w, p));
            }
        }
    }
    None
}

/// Convenience wrapper: explore `spec` to at most `max_states` states and
/// return the outcome.
#[must_use]
pub fn check(spec: &ModelSpec, max_states: u64) -> CheckOutcome {
    let mut e = Explorer::new(spec);
    e.run(max_states);
    e.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelProtocol, Mutation};
    use wavesim_topology::Topology;

    #[test]
    fn single_message_is_proved_clean() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1).msg(0, 3);
        let out = check(&spec, 1_000_000);
        assert!(out.proved(), "{}", out.verdict());
        assert!(out.states > 1);
    }

    #[test]
    fn budget_checkpointing_resumes() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 3)
            .msg(3, 0);
        // Reference run.
        let full = check(&spec, 1_000_000);
        assert!(full.proved());
        // Budgeted run, resumed to completion.
        let mut e = Explorer::new(&spec);
        let mut rounds = 0;
        let mut budget = 10;
        while !e.run(budget) {
            budget += 10;
            rounds += 1;
            assert!(rounds < 10_000, "resume never finishes");
        }
        let out = e.into_outcome();
        assert!(rounds > 0, "budget was actually hit");
        assert_eq!(
            out.states, full.states,
            "checkpointed run explores the same set"
        );
        assert_eq!(out.transitions, full.transitions);
        assert!(out.proved());
    }

    #[test]
    fn drop_release_deadlocks_and_is_reported() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 1)
            .msg(2, 3)
            .msg(0, 3)
            .mutate(Mutation::DropRelease);
        let out = check(&spec, 2_000_000);
        let cx = out.violation.expect("drop-release must deadlock");
        let ViolationKind::Deadlock { wait_cycle } = &cx.kind else {
            panic!("expected a deadlock, got {:?}", cx.kind)
        };
        // Lost wakeup, not a circular wait: the parked probe waits on a
        // Ready circuit that waits on nothing.
        assert!(wait_cycle.is_none(), "{wait_cycle:?}");
        assert!(!cx.schedule.is_empty());
    }

    #[test]
    fn skip_backoff_livelocks_with_a_lasso() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Carp, 1)
            .msg(0, 1)
            .msg(2, 3)
            .msg(0, 3)
            .mutate(Mutation::SkipBackoff);
        let out = check(&spec, 2_000_000);
        let cx = out.violation.expect("skip-backoff must livelock");
        assert_eq!(cx.kind, ViolationKind::Livelock);
        let loop_start = cx.loop_start.expect("lasso has a loop");
        assert!(loop_start < cx.schedule.len(), "loop is non-empty");
    }
}
