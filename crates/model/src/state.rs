//! The canonical, hashable protocol state.
//!
//! [`ModelState`] abstracts core's router/lane/circuit state down to what
//! the theorems quantify over: who holds which lane, and where each
//! circuit attempt is in its automaton. Everything is stored in dense,
//! fixed-order vectors (lane `i` is always the same physical lane, circuit
//! `j` is always message `j` of the spec), so structural equality *is*
//! canonical equality and `Hash` needs no sorting — the moral equivalent
//! of the arena-index idiom `core::arena` uses for ids and `sim::BitSet`
//! uses for membership (the History Store below is literally a bitmask
//! per node).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use wavesim_verify::ProgressMeasure;

use crate::spec::ModelCtx;

/// One lane's abstract state: exactly core's
/// [`wavesim_core::LaneState`] with the holder renamed to a message
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneSt {
    /// Available.
    Free,
    /// Reserved by circuit attempt `msg`.
    Held(u8),
    /// Out of service.
    Faulty,
}

/// A probe walking the control network (MB search, phases one/two).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeSt {
    /// Current switch (1-based).
    pub switch: u8,
    /// Bitmask of switches already exhausted in this phase.
    pub tried: u8,
    /// Phase two (Force bit set)?
    pub force: bool,
    /// Node the probe head sits at.
    pub at: u8,
    /// Per-node History Store: bit `p` set ⇔ output port `p` was searched
    /// from that node on this (switch, phase) leg.
    pub history: Vec<u8>,
    /// Lane the probe is parked on awaiting a Force release, if any.
    pub parked: Option<u16>,
}

/// Where a circuit attempt is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Message not yet injected.
    Pending,
    /// A probe is searching (path so far lives in [`CircSt::path`]).
    Probing(ProbeSt),
    /// Path fully reserved; the ack is walking back to the source.
    Acking {
        /// Ack hops still to travel.
        left: u8,
    },
    /// Established end to end.
    Ready,
    /// Releasing its lanes front-to-back (victim release, CARP teardown,
    /// or fault eviction).
    Tearing {
        /// Lanes already released.
        freed: u8,
    },
    /// Establishment given up — the message rides the (separately
    /// certified) minimal wormhole plane.
    Wormhole,
    /// Torn down for good.
    Closed,
}

/// One circuit attempt (= one message of the spec).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircSt {
    /// Lifecycle phase.
    pub phase: Phase,
    /// Reserved lanes, source-to-head order. Meaningful in
    /// `Probing`/`Acking`/`Ready`/`Tearing`; empty otherwise.
    pub path: Vec<u16>,
    /// Message delivered?
    pub delivered: bool,
    /// Remaining post-fault re-establishment budget.
    pub retries: u8,
}

/// A full protocol state — the unit of the seen-set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// Per-lane occupancy, dense lane order.
    pub lanes: Vec<LaneSt>,
    /// Per-message automaton state, spec order.
    pub circs: Vec<CircSt>,
    /// Has the spec's fault event fired?
    pub fault_fired: bool,
    /// Has the repair event fired?
    pub repaired: bool,
}

impl ModelState {
    /// The initial state: all lanes free, all messages pending.
    #[must_use]
    pub fn initial(ctx: &ModelCtx) -> Self {
        let retries = if ctx.spec.protocol.is_clrp() {
            ctx.spec.retries
        } else {
            0
        };
        ModelState {
            lanes: vec![LaneSt::Free; ctx.lane_count()],
            circs: ctx
                .spec
                .msgs
                .iter()
                .map(|_| CircSt {
                    phase: Phase::Pending,
                    path: Vec::new(),
                    delivered: false,
                    retries,
                })
                .collect(),
            fault_fired: false,
            repaired: false,
        }
    }

    /// A fresh probe for message `m` (phase one, staggered initial
    /// switch, empty History Store).
    #[must_use]
    pub fn fresh_probe(ctx: &ModelCtx, m: u8) -> ProbeSt {
        let (src, _) = ctx.spec.msgs[m as usize];
        ProbeSt {
            switch: ctx.initial_switch(src),
            tried: 0,
            force: false,
            at: src.0 as u8,
            history: vec![0; ctx.spec.topo.num_nodes() as usize],
            parked: None,
        }
    }

    /// True when some injected message is still undelivered — the
    /// "pending work" side condition of both the deadlock and the lasso
    /// checks.
    #[must_use]
    pub fn has_pending_work(&self) -> bool {
        self.circs
            .iter()
            .any(|c| !matches!(c.phase, Phase::Pending) && !c.delivered)
    }

    /// True when every message was delivered.
    #[must_use]
    pub fn all_delivered(&self) -> bool {
        self.circs.iter().all(|c| c.delivered)
    }

    /// A 64-bit digest (hash of the full state). Collisions are possible;
    /// the explorer's seen-set keys on the full state and uses this only
    /// for reporting.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// The shared progress measure (see
    /// [`wavesim_verify::ProgressMeasure`]): every component is
    /// nondecreasing along every transition of the *unmutated* automaton
    /// and of every mutation shipped here, so any cycle in the reachable
    /// graph has constant rank — which is what lets the lasso search
    /// restrict itself to rank-preserving edges.
    #[must_use]
    pub fn measure(&self, ctx: &ModelCtx) -> ProgressMeasure {
        let injected = self
            .circs
            .iter()
            .filter(|c| !matches!(c.phase, Phase::Pending))
            .count() as u64;
        let delivered = self.circs.iter().filter(|c| c.delivered).count() as u64;
        let base = if ctx.spec.protocol.is_clrp() {
            ctx.spec.retries
        } else {
            0
        };
        let escaped: u64 = self
            .circs
            .iter()
            .map(|c| {
                let settled = u64::from(matches!(c.phase, Phase::Wormhole | Phase::Closed));
                settled + u64::from(base - c.retries)
            })
            .sum::<u64>()
            + u64::from(self.fault_fired)
            + u64::from(self.repaired);
        ProgressMeasure {
            injected,
            delivered,
            escaped,
        }
    }

    /// Wait-for edges of this state, in the edge-list format
    /// [`wavesim_verify::deadlock::find_wait_cycle`] consumes: vertex =
    /// circuit attempt, edge `a → b` = "a's probe is parked on a lane
    /// reserved by b". A vertex is keyed `(circuit, lane-it-waits-on)` —
    /// the *same* key wherever that circuit appears, so edges chain and
    /// cycles close; a circuit that waits on nothing is keyed by the
    /// contested lane it holds. Reported cycles therefore name both the
    /// circuits and the contested lanes.
    #[must_use]
    pub fn wait_edges(&self) -> Vec<((u32, u16), (u32, u16))> {
        // Key every parked circuit by the lane it waits on first, so the
        // holder side of each edge can reuse the holder's own key.
        let parked_on: Vec<Option<u16>> = self
            .circs
            .iter()
            .map(|c| match c.phase {
                Phase::Probing(ref p) => p.parked,
                _ => None,
            })
            .collect();
        let mut edges = Vec::new();
        for (i, lane) in parked_on.iter().enumerate() {
            let Some(lane) = *lane else { continue };
            if let LaneSt::Held(holder) = self.lanes[lane as usize] {
                let holder_key = parked_on[usize::from(holder)].unwrap_or(lane);
                edges.push(((i as u32, lane), (u32::from(holder), holder_key)));
            }
        }
        edges
    }

    /// Structural sanity: every held lane appears in its holder's path,
    /// and every path lane is held by that circuit — except the spec's
    /// faulted lane, which an evicted circuit legally loses: it stays
    /// `Faulty` under the teardown, and after a repair it may already be
    /// `Free` or re-reserved by someone else. Debug aid for the fuzzer.
    pub fn consistent(&self, ctx: &ModelCtx) -> Result<(), String> {
        let lost = match ctx.spec.fault {
            Some(f) if self.fault_fired => Some(f.lane),
            _ => None,
        };
        for (i, c) in self.circs.iter().enumerate() {
            let owns = matches!(
                c.phase,
                Phase::Probing(_) | Phase::Acking { .. } | Phase::Ready | Phase::Tearing { .. }
            );
            if !owns && !c.path.is_empty() {
                return Err(format!("circuit {i} in a pathless phase but path nonempty"));
            }
            let freed = match c.phase {
                Phase::Tearing { freed } => usize::from(freed),
                _ => 0,
            };
            for (j, &l) in c.path.iter().enumerate() {
                let st = self.lanes[l as usize];
                if j < freed {
                    continue; // already released (or faulty)
                }
                if st != LaneSt::Held(i as u8) && st != LaneSt::Faulty && lost != Some(l) {
                    return Err(format!("circuit {i} path lane {l} is {st:?}"));
                }
            }
        }
        for (l, &st) in self.lanes.iter().enumerate() {
            if let LaneSt::Held(h) = st {
                let c = &self.circs[h as usize];
                if !c.path.contains(&(l as u16)) {
                    return Err(format!("lane {l} held by {h} but absent from its path"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelProtocol, ModelSpec};
    use wavesim_topology::Topology;

    fn ctx() -> ModelCtx {
        ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 3)
            .msg(3, 0)
            .compile()
    }

    #[test]
    fn initial_state_is_canonical_and_quiet() {
        let ctx = ctx();
        let s = ModelState::initial(&ctx);
        assert_eq!(s, ModelState::initial(&ctx));
        assert_eq!(s.fingerprint(), ModelState::initial(&ctx).fingerprint());
        assert!(!s.has_pending_work());
        assert!(!s.all_delivered());
        assert!(s.consistent(&ctx).is_ok());
        assert_eq!(s.measure(&ctx).rank(), 0);
    }

    #[test]
    fn staggered_initial_switch_spreads_sources() {
        let ctx = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 2)
            .msg(0, 3)
            .msg(1, 2)
            .compile();
        let a = ModelState::fresh_probe(&ctx, 0);
        let b = ModelState::fresh_probe(&ctx, 1);
        assert_ne!(a.switch, b.switch, "coordinate sums 0 and 1 stagger");
    }
}
