//! Scenario descriptions and their compiled form.
//!
//! A [`ModelSpec`] is the *finite instance* handed to the checker: a small
//! topology, a protocol, a fixed message set, and at most one lane fault.
//! [`ModelSpec::compile`] lowers it to a [`ModelCtx`] with a dense lane
//! index (valid unidirectional links × switches), which is what makes
//! [`crate::state::ModelState`] a flat, canonical, hashable vector.
//!
//! [`Mutation`] re-introduces three known-unsafe behaviors on purpose.
//! A checker that proves theorems must also *disprove* their negations,
//! or a vacuous explorer would pass silently; each mutation removes one
//! load-bearing rule from the paper's proofs:
//!
//! * [`Mutation::DropRelease`] — a Force claim parks the probe but the
//!   release request to the victim is lost (the concurrent-release
//!   discard applied where it must not be): the victim never tears down
//!   and the parked probe strands — a lost-wakeup deadlock.
//! * [`Mutation::SkipBackoff`] — an exhausted probe skips the back-off
//!   to the wormhole escape path and relaunches phase one with a cleared
//!   History Store, voiding the finite-search premise of Theorems 3–4:
//!   a livelock lasso.
//! * [`Mutation::WaitEstablishing`] — force probes may wait on lanes held
//!   by circuits still being *established*, violating the §4 no-wait rule
//!   that Theorem 1's acyclicity argument hinges on: a genuine circular
//!   wait that [`wavesim_verify::deadlock::find_wait_cycle`] exhibits.

use wavesim_topology::{LinkId, NodeId, PortDir, Topology};

/// Protocol variant under check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelProtocol {
    /// CLRP with the Force bit: three phases, victim release, parking.
    Clrp,
    /// CLRP with Force disabled — pure probe/MB search over the switches
    /// (phase one only), then wormhole fall-back. This is the "probe/MB-m"
    /// scenario of the theorem tests.
    ClrpNoForce,
    /// CARP: explicit establish/teardown, no Force, no fault retry.
    Carp,
}

impl ModelProtocol {
    /// True for the CLRP family (re-establishes after a fault while
    /// retries remain).
    #[must_use]
    pub fn is_clrp(self) -> bool {
        !matches!(self, ModelProtocol::Carp)
    }

    /// True when phase two (Force) exists.
    #[must_use]
    pub fn force_enabled(self) -> bool {
        matches!(self, ModelProtocol::Clrp)
    }
}

/// A deliberate protocol mutation (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The protocol as implemented — the theorems should hold.
    #[default]
    None,
    /// Lose the Force release request after parking the probe.
    DropRelease,
    /// Exhausted probes relaunch instead of falling back to wormhole.
    SkipBackoff,
    /// Force probes wait on Establishing circuits (no-wait rule removed).
    WaitEstablishing,
}

impl Mutation {
    /// Parses the CLI spelling.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Mutation::None),
            "drop-release" => Ok(Mutation::DropRelease),
            "skip-backoff" => Ok(Mutation::SkipBackoff),
            "wait-establishing" => Ok(Mutation::WaitEstablishing),
            other => Err(format!(
                "unknown mutation `{other}` (drop-release | skip-backoff | wait-establishing)"
            )),
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::DropRelease => "drop-release",
            Mutation::SkipBackoff => "skip-backoff",
            Mutation::WaitEstablishing => "wait-establishing",
        }
    }
}

/// A single injected lane fault (the PR 4 fault/RetryWait path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Dense lane index (see [`ModelCtx::lane_of`]).
    pub lane: u16,
    /// Whether a repair event is also available after the fault.
    pub repair: bool,
}

/// A finite checking instance.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// The (small) topology.
    pub topo: Topology,
    /// Protocol variant.
    pub protocol: ModelProtocol,
    /// Wave switches per link (`S1..Sk`).
    pub k: u8,
    /// Message set: one circuit attempt per `(src, dest)` pair.
    pub msgs: Vec<(NodeId, NodeId)>,
    /// Optional single lane fault.
    pub fault: Option<FaultSpec>,
    /// Post-fault re-establishment budget (CLRP only; CARP never
    /// retries).
    pub retries: u8,
    /// Active mutation.
    pub mutation: Mutation,
}

impl ModelSpec {
    /// A spec over `topo` with protocol `protocol` and `k` switches; no
    /// messages, no fault, no mutation.
    #[must_use]
    pub fn new(topo: Topology, protocol: ModelProtocol, k: u8) -> Self {
        assert!(k >= 1, "need at least one wave switch");
        Self {
            topo,
            protocol,
            k,
            msgs: Vec::new(),
            fault: None,
            retries: 1,
            mutation: Mutation::None,
        }
    }

    /// Adds a message (circuit attempt) from `src` to `dest`.
    #[must_use]
    pub fn msg(mut self, src: u32, dest: u32) -> Self {
        assert_ne!(src, dest, "model messages must travel");
        assert!(
            self.msgs.len() < 8,
            "the explorer caps the message set at 8"
        );
        self.msgs.push((NodeId(src), NodeId(dest)));
        self
    }

    /// Sets the mutation.
    #[must_use]
    pub fn mutate(mut self, m: Mutation) -> Self {
        self.mutation = m;
        self
    }

    /// Fills the message set by sampling a workload traffic pattern
    /// ([`wavesim_workloads::pattern_pairs`]) — the bridge between the
    /// simulator's workload vocabulary and the checker's fixed specs.
    ///
    /// # Panics
    /// Panics if an existing message plus `count` would exceed the
    /// 8-message cap, or if the pattern yields a self-loop (patterns
    /// never do).
    #[must_use]
    pub fn msgs_from_pattern(
        mut self,
        pattern: wavesim_workloads::TrafficPattern,
        count: usize,
        seed: u64,
    ) -> Self {
        for (src, dest) in wavesim_workloads::pattern_pairs(&self.topo, pattern, count, seed) {
            self = self.msg(src.0, dest.0);
        }
        self
    }

    /// Arms a fault on the first lane (switch 1) of message 0's
    /// lowest-dimension minimal path — deterministic, and guaranteed to
    /// be a lane the protocol actually wants.
    #[must_use]
    pub fn fault_on_first_path(mut self, repair: bool) -> Self {
        let (src, dest) = *self.msgs.first().expect("add messages before the fault");
        let port = *self
            .topo
            .min_ports(src, dest)
            .first()
            .expect("src != dest has a minimal port");
        let ctx = self.compile();
        let lane = ctx
            .lane_of(src, port, 1)
            .expect("minimal port has a physical link");
        self.fault = Some(FaultSpec { lane, repair });
        self
    }

    /// Compiles to the dense context the explorer runs against.
    ///
    /// # Panics
    /// Panics when a message endpoint is out of range or the instance is
    /// degenerate (no messages is allowed only for ad-hoc uses).
    #[must_use]
    pub fn compile(&self) -> ModelCtx {
        let n = self.topo.num_nodes();
        assert!(n <= 64, "the explorer targets small fabrics (≤ 64 nodes)");
        for &(s, d) in &self.msgs {
            assert!(s.0 < n && d.0 < n, "message endpoint out of range");
        }
        let links: Vec<LinkId> = self.topo.links().collect();
        let mut slot_to_dense = vec![u16::MAX; self.topo.num_link_slots()];
        for (i, l) in links.iter().enumerate() {
            slot_to_dense[l.0 as usize] = u16::try_from(i).expect("small fabric");
        }
        ModelCtx {
            spec: self.clone(),
            links,
            slot_to_dense,
        }
    }
}

/// A [`ModelSpec`] lowered to dense lane indices.
///
/// Dense lane `i` is `link_index * k + (switch - 1)` where `link_index`
/// enumerates the topology's *valid* unidirectional links in slot order —
/// the same canonical order every state vector uses.
#[derive(Debug, Clone)]
pub struct ModelCtx {
    /// The source spec.
    pub spec: ModelSpec,
    links: Vec<LinkId>,
    slot_to_dense: Vec<u16>,
}

impl ModelCtx {
    /// Number of dense lanes (`valid links × k`).
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.links.len() * usize::from(self.spec.k)
    }

    /// Dense lane for `node`'s output `port` at `switch` (1-based), or
    /// `None` at a mesh boundary.
    #[must_use]
    pub fn lane_of(&self, node: NodeId, port: PortDir, switch: u8) -> Option<u16> {
        debug_assert!(switch >= 1 && switch <= self.spec.k);
        self.spec.topo.neighbor(node, port)?;
        let slot = self.spec.topo.link_id(node, port).0 as usize;
        let dense = self.slot_to_dense[slot];
        debug_assert_ne!(dense, u16::MAX);
        Some(dense * u16::from(self.spec.k) + u16::from(switch - 1))
    }

    /// The physical link of a dense lane.
    #[must_use]
    pub fn link_of(&self, lane: u16) -> LinkId {
        self.links[lane as usize / usize::from(self.spec.k)]
    }

    /// The (source node, output port, switch) triple of a dense lane.
    #[must_use]
    pub fn lane_endpoints(&self, lane: u16) -> (NodeId, PortDir, u8) {
        let link = self.link_of(lane);
        let (node, port) = self.spec.topo.link_endpoints(link);
        let switch = (lane % u16::from(self.spec.k)) as u8 + 1;
        (node, port, switch)
    }

    /// The node a dense lane leads to.
    #[must_use]
    pub fn lane_dest(&self, lane: u16) -> NodeId {
        self.spec.topo.link_dest(self.link_of(lane))
    }

    /// The staggered initial switch for a probe from `src`: CLRP spreads
    /// initial-switch choices by source coordinates so concurrent probes
    /// do not all pile onto `S1`.
    #[must_use]
    pub fn initial_switch(&self, src: NodeId) -> u8 {
        let c = self.spec.topo.coords(src);
        let sum: u32 = (0..self.spec.topo.ndims())
            .map(|d| u32::from(c.get(d)))
            .sum();
        (sum % u32::from(self.spec.k)) as u8 + 1
    }

    /// Bitmask with one bit per switch (`switch s ⇒ bit s-1`).
    #[must_use]
    pub fn all_switches(&self) -> u8 {
        if self.spec.k >= 8 {
            u8::MAX
        } else {
            (1u8 << self.spec.k) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::{Dir, PortDir};

    #[test]
    fn dense_lanes_are_a_bijection() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 2);
        let ctx = spec.compile();
        assert_eq!(ctx.lane_count(), 8 * 2); // 8 unidirectional links × k=2
        let mut seen = vec![false; ctx.lane_count()];
        for node in ctx.spec.topo.nodes() {
            for port in ctx.spec.topo.ports_of(node) {
                for s in 1..=2u8 {
                    let lane = ctx.lane_of(node, port, s).unwrap();
                    assert!(!seen[lane as usize], "lane {lane} duplicated");
                    seen[lane as usize] = true;
                    let (n2, p2, s2) = ctx.lane_endpoints(lane);
                    assert_eq!((n2, p2, s2), (node, port, s));
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn boundary_ports_have_no_lane() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Carp, 1);
        let ctx = spec.compile();
        // Node 0 of a 2x2 mesh has no Minus neighbours.
        assert!(ctx
            .lane_of(NodeId(0), PortDir::new(0, Dir::Minus), 1)
            .is_none());
    }

    #[test]
    fn fault_lands_on_msg0_first_hop() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 3)
            .fault_on_first_path(false);
        let f = spec.fault.unwrap();
        let ctx = spec.compile();
        // Lowest dimension first: 0 → 1 is the dim-0 Plus hop.
        assert_eq!(ctx.lane_dest(f.lane), NodeId(1));
    }
}
