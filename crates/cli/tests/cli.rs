//! End-to-end tests of the `wavesim` binary.

use std::process::Command;

fn wavesim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wavesim"))
}

#[test]
fn info_prints_configuration() {
    let out = wavesim().arg("info").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("wave switches per router"));
    assert!(text.contains("e13"));
}

#[test]
fn check_certifies_routing() {
    let out = wavesim()
        .args(["check", "--side", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "static checks must pass");
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.matches("DEADLOCK-FREE").count(), 4);
    assert!(!text.contains("CYCLE FOUND"));
}

#[test]
fn experiment_json_output_is_valid() {
    let out = wavesim()
        .args(["e4", "--scale", "small", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let v = wavesim_json::Value::parse(&text).expect("valid JSON table");
    assert_eq!(v["id"], "E4");
    assert!(v["rows"].as_array().unwrap().len() >= 2);
}

#[test]
fn custom_run_reports_clean() {
    let out = wavesim()
        .args([
            "run",
            "--protocol",
            "clrp",
            "--side",
            "4",
            "--load",
            "0.1",
            "--cycles",
            "2000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("verdict          : CLEAN"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = wavesim().arg("bogus").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}
