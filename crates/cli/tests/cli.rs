//! End-to-end tests of the `wavesim` binary.

use std::process::Command;

fn wavesim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wavesim"))
}

#[test]
fn info_prints_configuration() {
    let out = wavesim().arg("info").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("wave switches per router"));
    assert!(text.contains("e13"));
}

#[test]
fn check_certifies_routing() {
    let out = wavesim()
        .args(["check", "--side", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "static checks must pass");
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.matches("DEADLOCK-FREE").count(), 4);
    assert!(!text.contains("CYCLE FOUND"));
}

#[test]
fn experiment_json_output_is_valid() {
    let out = wavesim()
        .args(["e4", "--scale", "small", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let v = wavesim_json::Value::parse(&text).expect("valid JSON table");
    assert_eq!(v["id"], "E4");
    assert!(v["rows"].as_array().unwrap().len() >= 2);
}

#[test]
fn custom_run_reports_clean() {
    let out = wavesim()
        .args([
            "run",
            "--protocol",
            "clrp",
            "--side",
            "4",
            "--load",
            "0.1",
            "--cycles",
            "2000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("verdict          : CLEAN"), "{text}");
}

#[test]
fn run_writes_trace_and_metrics_and_validates() {
    let dir = std::env::temp_dir().join(format!("wavesim-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.trace.json");
    let metrics = dir.join("run.metrics.txt");
    let out = wavesim()
        .args([
            "run",
            "--side",
            "4",
            "--load",
            "0.1",
            "--cycles",
            "2000",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace is valid Perfetto JSON with the expected envelope.
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = wavesim_json::Value::parse(&text).expect("trace parses");
    assert_eq!(doc["displayTimeUnit"], "ms");
    assert!(!doc["traceEvents"].as_array().unwrap().is_empty());

    // The binary's own validator accepts it.
    let out = wavesim()
        .args(["validate-trace", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("valid Perfetto trace"), "{text}");

    // The metrics page is Prometheus-shaped.
    let page = std::fs::read_to_string(&metrics).unwrap();
    assert!(page.contains("# TYPE wavesim_msgs_sent counter"));
    assert!(page.contains("wavesim_traced_latency_cycles_bucket"));

    // A clean run writes no post-mortem bundle.
    assert!(!trace.with_extension("json.postmortem.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_trace_rejects_malformed_input() {
    let dir = std::env::temp_dir().join(format!("wavesim-cli-badtrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"traceEvents\": [{\"ph\": \"b\"}]}").unwrap();
    let out = wavesim()
        .args(["validate-trace", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:"), "{err}");

    let missing = dir.join("does-not-exist.json");
    let out = wavesim()
        .args(["validate-trace", missing.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_capture_converts_and_analyzes_end_to_end() {
    let dir = std::env::temp_dir().join(format!("wavesim-cli-bintrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("run.wstrace");
    let jsonl = dir.join("run.jsonl");
    let run = |extra: &[&str]| {
        let out = wavesim()
            .args(["run", "--side", "4", "--load", "0.1", "--cycles", "2000"])
            .args(extra)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    // One run, both stream formats.
    let text = run(&[
        "--trace-bin",
        bin.to_str().unwrap(),
        "--trace-jsonl",
        jsonl.to_str().unwrap(),
    ]);
    assert!(text.contains("wrote binary stream"), "{text}");
    let bin_len = std::fs::metadata(&bin).unwrap().len();
    let jsonl_len = std::fs::metadata(&jsonl).unwrap().len();
    assert!(
        bin_len * 4 <= jsonl_len,
        "binary must be <= 25% of JSONL ({bin_len} vs {jsonl_len} bytes)"
    );

    // validate-trace recognises both stream formats by content.
    for (path, tag) in [
        (&bin, "binary columnar trace"),
        (&jsonl, "JSONL record stream"),
    ] {
        let out = wavesim()
            .args(["validate-trace", path.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains(tag), "{text}");
    }

    // Binary -> JSONL conversion reproduces the streamed JSONL bytes.
    let conv = dir.join("conv.jsonl");
    let out = wavesim()
        .args([
            "convert-trace",
            bin.to_str().unwrap(),
            "--out",
            conv.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&conv).unwrap(),
        std::fs::read(&jsonl).unwrap(),
        "conversion must be lossless, byte for byte"
    );

    // JSONL -> binary conversion reproduces the streamed binary bytes.
    let conv_bin = dir.join("conv.wstrace");
    let out = wavesim()
        .args([
            "convert-trace",
            jsonl.to_str().unwrap(),
            "--out",
            conv_bin.to_str().unwrap(),
            "--to",
            "bin",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&conv_bin).unwrap(),
        std::fs::read(&bin).unwrap(),
        "round-trip conversion must reproduce the binary stream"
    );

    // analyze consumes the binary stream natively and matches the JSONL
    // analysis exactly.
    let analyze = |path: &std::path::Path, json_out: &std::path::Path| {
        let out = wavesim()
            .args([
                "analyze",
                "--trace",
                path.to_str().unwrap(),
                "--report",
                dir.join("rep.txt").to_str().unwrap(),
                "--json",
                json_out.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(json_out).unwrap()
    };
    let from_bin = analyze(&bin, &dir.join("a_bin.json"));
    let from_jsonl = analyze(&jsonl, &dir.join("a_jsonl.json"));
    assert_eq!(from_bin, from_jsonl, "analysis must be format-agnostic");

    // Sampled capture stays decodable and strictly smaller.
    let sampled = dir.join("sampled.wstrace");
    run(&[
        "--trace-bin",
        sampled.to_str().unwrap(),
        "--trace-sample",
        "8",
    ]);
    let out = wavesim()
        .args(["validate-trace", sampled.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(std::fs::metadata(&sampled).unwrap().len() < bin_len);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_check_proves_and_mutation_refutes() {
    // Exhaustive proof on the 2x2 mesh: exit 0, PROVED verdict with the
    // pinned state count (exploration is deterministic).
    let out = wavesim()
        .args([
            "check", "--model", "clrp", "--k", "1", "--msg", "0:3", "--msg", "3:0", "--msg", "1:2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("PROVED deadlock- and livelock-free: 7767 states"),
        "{text}"
    );

    // The mutated model must fail, write a replayable counterexample
    // trace, and that trace must pass the binary's own validator.
    let dir = std::env::temp_dir().join(format!("wavesim-cli-model-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cx = dir.join("cx.jsonl");
    let out = wavesim()
        .args([
            "check",
            "--model",
            "clrp",
            "--k",
            "1",
            "--msg",
            "0:1",
            "--msg",
            "2:3",
            "--msg",
            "0:3",
            "--mutate",
            "drop-release",
            "--counterexample",
            cx.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "mutated model must not prove clean");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("VIOLATION (deadlock)"), "{text}");
    let out = wavesim()
        .args(["validate-trace", cx.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_is_deterministic_and_clean_on_correct_model() {
    let run = || {
        let out = wavesim()
            .args([
                "fuzz", "--model", "carp", "--runs", "16", "--steps", "2000", "--seed", "11",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let a = run();
    assert!(a.contains("OK: 16 runs"), "{a}");
    assert_eq!(a, run(), "fuzzing must be deterministic in --seed");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = wavesim().arg("bogus").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}
