//! `wavesim` — command-line experiment runner.
//!
//! ```text
//! wavesim all [--scale small|paper] [--json] [--jobs N]   run every experiment
//! wavesim e1 .. e15 [--scale ...] [--json] [--jobs N]     run one experiment
//!                                              (--jobs fans sweep points over
//!                                              N threads; output is identical
//!                                              to --jobs 1)
//! wavesim run [workload flags]                 one custom simulation
//! wavesim gen-trace --collective C --out FILE  emit a dependency trace
//! wavesim analyze --trace run.jsonl            trace analytics report
//! wavesim check [--side N]                     static deadlock-freedom checks (CDG)
//! wavesim check --model clrp|carp|probe        exhaustive protocol model check
//!   [--topology mesh|torus] [--side N] [--k N] [--msgs N | --msg S:D ...] [--seed N]
//!   [--fault] [--repair] [--mutate drop-release|skip-backoff|wait-establishing]
//!   [--max-states N] [--counterexample FILE]
//!   Explores EVERY interleaving of the protocol automaton on a small
//!   fabric (default 2x2 mesh / 3x3 torus) and proves deadlock- and
//!   livelock-freedom, or prints a shrunk counterexample schedule and
//!   exits nonzero. `--counterexample FILE` additionally replays the
//!   schedule through the real network and writes the captured trace
//!   (JSONL, or WSTRACE1 when FILE ends in `.bin`) for `validate-trace`
//!   and `analyze`. `--mutate` injects a deliberate protocol bug so the
//!   checker's teeth can be demonstrated (and regression-tested).
//! wavesim fuzz --model clrp|carp|probe         adversarial schedule fuzzing
//!   [--runs N] [--steps N] [--seed N] + the model flags above
//!   Random interleavings plus random fault churn; violations are
//!   shrunk to 1-minimal schedules. Deterministic in --seed.
//! wavesim validate-trace FILE                  schema-check a Perfetto trace file
//! wavesim info                                 print the default configuration
//!
//! `run` flags: --protocol clrp|carp|wormhole  --topology mesh|torus
//!              --side N  --load F  --len N  --locality F  --cycles N
//!              --seed N  --k N  --alpha N  --cache N  --misroutes N
//!              --shards N
//!
//! `run --replay-trace FILE` replays a dependency-aware message trace
//! (JSON or JSONL, see `wavesim_workloads::trace_io`) instead of driving
//! the open-loop generator: each message is released only once all its
//! `deps` have been *delivered*, so injection timing responds to the
//! network. Cyclic traces are rejected at load. `gen-trace` emits the
//! collective traces E15 replays (all-to-all, reduce, broadcast,
//! transpose-sweep) for a mesh of `--side`; `--out x.jsonl` selects the
//! line-oriented format, any other name the pretty JSON document.
//!
//! `run --service-clients N` drives closed-loop service traffic instead:
//! N clients (bookkeeping is O(active), so millions are fine) ramp in
//! over the first fifth of `--cycles`, each issuing a request to a
//! server partner chosen with `--locality`, thinking after each reply,
//! and re-issuing — offered load responds to delivered latency.
//!
//! `--shards N` spatially partitions the wormhole fabric into N
//! contiguous router bands stepped on N threads. The partitioning is
//! deterministic and conservative — every printed line and every trace
//! byte is identical at any shard count; only wall-clock time changes.
//!
//! Fault flags (`run` only): `--fault-plan FILE` applies a static fault
//! plan (JSON, see `wavesim_workloads::trace_io`) before traffic starts;
//! `--fault-schedule FILE` schedules timed dynamic fail/repair events.
//! Both are validated against the chosen topology and `--k`; a plan built
//! for a different network is a clean error, not a panic.
//!
//! Observability flags (`run` and experiments): `--trace-out FILE` writes a
//! Chrome/Perfetto `trace_event` JSON of the run (plus `FILE.postmortem.json`
//! when the run stalls), `--metrics-out FILE` (run only) writes a
//! Prometheus-style metrics page, `--flight-recorder N` sizes the in-memory
//! ring buffer (default 65536 records). Tracing forces `--jobs 1`: the
//! flight recorder is thread-local, and sweep workers are untraced.
//!
//! Analytics: `--trace-jsonl FILE` (`run` and experiments) streams the
//! *complete* event record to JSONL with bounded memory (nothing the
//! ring buffer would drop is lost; for experiment sweeps the file is
//! re-streamed per point and ends holding the last one), `--timeseries-out
//! FILE` (run only) writes windowed CSV (`--window N` cycles per row,
//! default 1000), `--progress N` prints a
//! one-line status every N cycles. `wavesim analyze --trace run.jsonl
//! [--report FILE] [--json FILE] [--timeseries FILE] [--window N]
//! [--top N]` turns a captured JSONL stream into latency waterfalls,
//! circuit-cache flow attribution, hot-lane occupancy, and fault impact
//! windows — `--json` takes a FILE here, unlike the experiment commands.
//!
//! Binary capture: `--trace-bin FILE` (`run` and experiments) streams the
//! same record stream as `--trace-jsonl` in the compact binary columnar
//! format (`WSTRACE1` frames, typically < 10% of the JSONL bytes);
//! `--trace-sample N` keeps 1-in-N of the bulk event kinds (plane ticks,
//! probe hops, cache probes) deterministically while always keeping
//! lifecycle events. `analyze --trace` accepts either format
//! transparently (pass the same `--trace-sample N` to rescale a sampled
//! capture's bulk counts; the factor is stamped into the report), and
//! `wavesim convert-trace IN --out FILE [--to jsonl|bin]` converts
//! losslessly between them (`validate-trace` also recognises both,
//! alongside Perfetto exports). Both `analyze` and `convert-trace`
//! stream their input frame-by-frame, so arbitrarily large captures are
//! processed in bounded memory.
//!
//! Live observability (`run` and experiments): `--serve-metrics ADDR`
//! binds a dependency-free HTTP endpoint serving the running simulation's
//! vitals (`GET /metrics` Prometheus text, `GET /status` JSON);
//! `--live-status` prints a one-line progress report to stderr every 8192
//! cycles. Both read a snapshot board the drive loop publishes every 64
//! cycles — stdout stays byte-identical to an unserved run.
//! `--live-analyze` (`run` only) folds the full record stream through the
//! incremental analytics engine *during* the run on the capture writer
//! thread and prints the same report `analyze` would, with no second pass
//! over a trace file.
//!
//! Watchdogs (`run` and experiments): `--watch-stall N` trips when no
//! message is delivered for N cycles, `--watch-retries N` on more than N
//! establishment retries in a 4096-cycle window, `--watch-imbalance F` when
//! the slowest shard exceeds F× the mean wall time (nondeterministic —
//! off by default), `--watch-deadlock` runs a wait-for-graph cycle search
//! once the fabric stops for 2048 cycles. A trip stamps a `watchdog_trip`
//! record into the trace; `--watch-postmortem FILE` additionally flushes a
//! flight-recorder post-mortem bundle, and `--watch-abort` ends the run
//! with a nonzero exit.
//! ```

use std::env;
use std::process::ExitCode;

use wavesim_bench::{experiments, run_open_loop, tracecap, RunSpec, Scale};
use wavesim_core::{LaneId, ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_topology::{RoutingKind, Topology};
use wavesim_trace::TraceSink;
use wavesim_verify::check_deadlock_freedom;
use wavesim_workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn usage() -> ! {
    eprintln!(
        "usage: wavesim <all|e1..e15|run|gen-trace|analyze|convert-trace|check|fuzz|validate-trace|info> [--scale small|paper] [--json] [--jobs N] [--side N]\n\
         model check: wavesim check --model clrp|carp|probe [--topology mesh|torus] [--side N]\n\
                      [--k N] [--msgs N] [--seed N] [--fault] [--repair] [--mutate M]\n\
                      [--max-states N] [--counterexample FILE]\n\
         fuzz:        wavesim fuzz --model ... [--runs N] [--steps N] [--seed N]\n\
         run flags: --protocol clrp|carp|wormhole --topology mesh|torus --side N --load F\n\
                    --len N --locality F --cycles N --seed N --k N --alpha N --cache N\n\
                    --misroutes N --shards N\n\
                    --replay-trace FILE (dependency-aware trace replay)\n\
                    --service-clients N (closed-loop service traffic)\n\
         gen-trace: wavesim gen-trace --collective all-to-all|reduce|broadcast|transpose-sweep\n\
                    [--side N] [--len N] [--seed N] --out FILE (.jsonl streams, else JSON doc)\n\
         fault flags (run): --fault-plan FILE --fault-schedule FILE\n\
         trace flags: --trace-out FILE --metrics-out FILE --flight-recorder N\n\
                      --trace-jsonl FILE --trace-bin FILE --trace-sample N\n\
                      --timeseries-out FILE --window N --progress N\n\
         live flags:  --serve-metrics ADDR --live-status --live-analyze\n\
         watchdogs:   --watch-stall N --watch-retries N --watch-imbalance F\n\
                      --watch-deadlock --watch-abort --watch-postmortem FILE\n\
         analyze flags: --trace FILE [--report FILE] [--json FILE] [--timeseries FILE]\n\
                        [--window N] [--top N] [--trace-sample N]\n\
         convert-trace: wavesim convert-trace IN --out FILE [--to jsonl|bin]"
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    scale: Scale,
    json: bool,
    jobs: usize,
    side: u16,
    // `run` knobs
    protocol: ProtocolKind,
    torus: bool,
    load: f64,
    len: u32,
    locality: f64,
    cycles: u64,
    seed: u64,
    k: u8,
    alpha: u32,
    cache: usize,
    misroutes: u8,
    shards: usize,
    // dependency-trace replay / closed-loop service mode (`run`)
    replay_trace: Option<String>,
    service_clients: Option<u64>,
    // `gen-trace` inputs
    collective: Option<String>,
    // fault injection
    fault_plan: Option<String>,
    fault_schedule: Option<String>,
    // observability
    trace_out: Option<String>,
    metrics_out: Option<String>,
    flight_recorder: usize,
    // analytics capture (`run`)
    trace_jsonl: Option<String>,
    trace_bin: Option<String>,
    trace_sample: u64,
    timeseries_out: Option<String>,
    window: u64,
    progress: Option<u64>,
    // live observability plane
    serve_metrics: Option<String>,
    live_status: bool,
    live_analyze: bool,
    // watchdog rules
    watch_stall: Option<u64>,
    watch_retries: Option<u64>,
    watch_imbalance: Option<f64>,
    watch_deadlock: bool,
    watch_abort: bool,
    watch_postmortem: Option<String>,
    // `analyze` inputs/outputs
    trace_in: Option<String>,
    report_out: Option<String>,
    json_out: Option<String>,
    timeseries_csv: Option<String>,
    top: usize,
    // `convert-trace` outputs
    out: Option<String>,
    to_bin: bool,
    // positional operand (validate-trace FILE / convert-trace IN)
    path: Option<String>,
    // model checker (`check --model …` / `fuzz`)
    model: Option<String>,
    side_set: bool,
    msgs: usize,
    fault: bool,
    repair: bool,
    mutate: Option<String>,
    msg_list: Vec<String>,
    max_states: u64,
    counterexample: Option<String>,
    runs: u32,
    steps: u32,
}

fn parse_args() -> Args {
    let mut argv = env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| usage());
    let mut args = Args {
        cmd,
        scale: Scale::paper(),
        json: false,
        jobs: 1,
        side: 8,
        protocol: ProtocolKind::Clrp,
        torus: false,
        load: 0.2,
        len: 64,
        locality: 0.7,
        cycles: 20_000,
        seed: 1,
        k: 2,
        alpha: 4,
        cache: 16,
        misroutes: 2,
        shards: 1,
        replay_trace: None,
        service_clients: None,
        collective: None,
        fault_plan: None,
        fault_schedule: None,
        trace_out: None,
        metrics_out: None,
        flight_recorder: 1 << 16,
        trace_jsonl: None,
        trace_bin: None,
        trace_sample: 1,
        timeseries_out: None,
        window: 1000,
        progress: None,
        serve_metrics: None,
        live_status: false,
        live_analyze: false,
        watch_stall: None,
        watch_retries: None,
        watch_imbalance: None,
        watch_deadlock: false,
        watch_abort: false,
        watch_postmortem: None,
        trace_in: None,
        report_out: None,
        json_out: None,
        timeseries_csv: None,
        top: 10,
        out: None,
        to_bin: false,
        path: None,
        model: None,
        side_set: false,
        msgs: 3,
        fault: false,
        repair: false,
        mutate: None,
        msg_list: Vec::new(),
        max_states: 5_000_000,
        counterexample: None,
        runs: 64,
        steps: 4_000,
    };
    macro_rules! next_parse {
        ($argv:ident) => {
            $argv
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage())
        };
    }
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => match argv.next().as_deref() {
                Some("small") => args.scale = Scale::small(),
                Some("paper") => args.scale = Scale::paper(),
                _ => usage(),
            },
            // For `analyze`, --json names an output file; everywhere else
            // it is a boolean format switch.
            "--json" if args.cmd == "analyze" => {
                args.json_out = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--json" => args.json = true,
            "--trace" => args.trace_in = Some(argv.next().unwrap_or_else(|| usage())),
            "--report" => args.report_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--timeseries" => {
                args.timeseries_csv = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--top" => args.top = next_parse!(argv),
            "--trace-jsonl" => args.trace_jsonl = Some(argv.next().unwrap_or_else(|| usage())),
            "--trace-bin" => args.trace_bin = Some(argv.next().unwrap_or_else(|| usage())),
            "--trace-sample" => {
                args.trace_sample = next_parse!(argv);
                if args.trace_sample == 0 {
                    usage();
                }
            }
            "--out" => args.out = Some(argv.next().unwrap_or_else(|| usage())),
            "--to" => {
                args.to_bin = match argv.next().as_deref() {
                    Some("jsonl") => false,
                    Some("bin") => true,
                    _ => usage(),
                }
            }
            "--timeseries-out" => {
                args.timeseries_out = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--window" => {
                args.window = next_parse!(argv);
                if args.window == 0 {
                    usage();
                }
            }
            "--progress" => {
                args.progress = Some(next_parse!(argv));
                if args.progress == Some(0) {
                    usage();
                }
            }
            "--jobs" => args.jobs = next_parse!(argv),
            "--side" => {
                args.side = next_parse!(argv);
                args.side_set = true;
            }
            "--model" => args.model = Some(argv.next().unwrap_or_else(|| usage())),
            "--msgs" => args.msgs = next_parse!(argv),
            "--msg" => args.msg_list.push(argv.next().unwrap_or_else(|| usage())),
            "--fault" => args.fault = true,
            "--repair" => args.repair = true,
            "--mutate" => args.mutate = Some(argv.next().unwrap_or_else(|| usage())),
            "--max-states" => {
                args.max_states = next_parse!(argv);
                if args.max_states == 0 {
                    usage();
                }
            }
            "--counterexample" => {
                args.counterexample = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--runs" => args.runs = next_parse!(argv),
            "--steps" => args.steps = next_parse!(argv),
            "--protocol" => {
                args.protocol = match argv.next().as_deref() {
                    Some("clrp") => ProtocolKind::Clrp,
                    Some("carp") => ProtocolKind::Carp,
                    Some("wormhole") => ProtocolKind::WormholeOnly,
                    _ => usage(),
                }
            }
            "--topology" => {
                args.torus = match argv.next().as_deref() {
                    Some("mesh") => false,
                    Some("torus") => true,
                    _ => usage(),
                }
            }
            "--load" => args.load = next_parse!(argv),
            "--len" => args.len = next_parse!(argv),
            "--locality" => args.locality = next_parse!(argv),
            "--cycles" => args.cycles = next_parse!(argv),
            "--seed" => args.seed = next_parse!(argv),
            "--k" => args.k = next_parse!(argv),
            "--alpha" => args.alpha = next_parse!(argv),
            "--cache" => args.cache = next_parse!(argv),
            "--misroutes" => args.misroutes = next_parse!(argv),
            "--shards" => {
                args.shards = next_parse!(argv);
                if args.shards == 0 {
                    usage();
                }
            }
            "--replay-trace" => args.replay_trace = Some(argv.next().unwrap_or_else(|| usage())),
            "--service-clients" => {
                args.service_clients = Some(next_parse!(argv));
                if args.service_clients == Some(0) {
                    usage();
                }
            }
            "--collective" => args.collective = Some(argv.next().unwrap_or_else(|| usage())),
            "--fault-plan" => args.fault_plan = Some(argv.next().unwrap_or_else(|| usage())),
            "--fault-schedule" => {
                args.fault_schedule = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--serve-metrics" => {
                args.serve_metrics = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--live-status" => args.live_status = true,
            "--live-analyze" => args.live_analyze = true,
            "--watch-stall" => {
                args.watch_stall = Some(next_parse!(argv));
                if args.watch_stall == Some(0) {
                    usage();
                }
            }
            "--watch-retries" => args.watch_retries = Some(next_parse!(argv)),
            "--watch-imbalance" => {
                args.watch_imbalance = Some(next_parse!(argv));
                if args.watch_imbalance.is_some_and(|f| f <= 1.0) {
                    usage();
                }
            }
            "--watch-deadlock" => args.watch_deadlock = true,
            "--watch-abort" => args.watch_abort = true,
            "--watch-postmortem" => {
                args.watch_postmortem = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--trace-out" => args.trace_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--metrics-out" => args.metrics_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--flight-recorder" => {
                args.flight_recorder = next_parse!(argv);
                if args.flight_recorder == 0 {
                    usage();
                }
            }
            _ if !a.starts_with('-') && args.path.is_none() => args.path = Some(a),
            _ => usage(),
        }
    }
    args
}

/// Writes `contents` to `path`, reporting failure on stderr.
fn write_file(path: &str, contents: &str) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            false
        }
    }
}

/// Exports one captured run as Perfetto JSON (plus a post-mortem bundle
/// when the run stalled). `counters` are pre-built counter-track events —
/// the time-series sampler's per-window metrics. Returns `false` on I/O
/// failure.
fn export_trace(path: &str, t: &tracecap::RunTrace, counters: Vec<wavesim_json::Value>) -> bool {
    let doc = wavesim_trace::perfetto::export_with_counters(&t.records, counters);
    if !write_file(path, &doc.compact()) {
        return false;
    }
    println!(
        "wrote trace: {path} ({} records kept, {} dropped of {})",
        t.records.len(),
        t.dropped,
        t.total
    );
    if let Some(pm) = &t.post_mortem {
        let pm_path = format!("{path}.postmortem.json");
        if !write_file(&pm_path, &pm.pretty()) {
            return false;
        }
        println!("run stalled — wrote post-mortem: {pm_path}");
    }
    true
}

/// Schema-checks a trace file: binary columnar streams (`--trace-bin`),
/// JSONL record streams (`--trace-jsonl`), and Perfetto exports
/// (`--trace-out`) are all recognised by content, not extension.
fn validate_trace(path: &str) -> bool {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return false;
        }
    };
    if wavesim_trace::stream::TraceFormat::detect(&bytes)
        == wavesim_trace::stream::TraceFormat::Columnar
    {
        return match wavesim_trace::read_columnar(&bytes) {
            Ok(records) => {
                println!(
                    "{path}: valid binary columnar trace — {} records ({} bytes)",
                    records.len(),
                    bytes.len()
                );
                true
            }
            Err(e) => {
                eprintln!("error: {path}: corrupt binary trace: {e}");
                false
            }
        };
    }
    let text = match std::str::from_utf8(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: neither a binary trace nor UTF-8 JSON: {e}");
            return false;
        }
    };
    // A JSONL record stream is many one-object lines; a Perfetto export is
    // one document. Try the record schema first so a single-record stream
    // is not misread as a malformed Perfetto file.
    if let Ok(records) = wavesim_trace::stream::read_jsonl(text) {
        if !records.is_empty() {
            println!(
                "{path}: valid JSONL record stream — {} records",
                records.len()
            );
            return true;
        }
    }
    let doc = match wavesim_json::Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path}: invalid JSON: {e}");
            return false;
        }
    };
    match wavesim_trace::perfetto::validate(&doc) {
        Ok(s) => {
            println!(
                "{path}: valid Perfetto trace — {} events ({} spans, {} instants)",
                s.events, s.spans, s.instants
            );
            true
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            false
        }
    }
}

/// `wavesim convert-trace IN --out FILE [--to jsonl|bin]` — lossless
/// conversion between the JSONL and binary columnar stream formats (the
/// input format is sniffed from its leading bytes).
fn convert_trace(args: &Args) -> bool {
    let Some(input) = &args.path else {
        eprintln!("error: convert-trace needs an input FILE operand");
        return false;
    };
    let Some(out) = &args.out else {
        eprintln!("error: convert-trace needs --out FILE");
        return false;
    };
    // Stream end to end: the reader decodes the input frame-by-frame and
    // the writer is the same chunked background sink the capture path
    // uses, so conversion runs in bounded memory at any capture size.
    use wavesim_trace::stream::TraceReader as _;
    let mut reader = match wavesim_trace::stream::stream_trace_file(std::path::Path::new(input)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return false;
        }
    };
    let (mut sink, what): (Box<dyn TraceSink>, &str) = if args.to_bin {
        match wavesim_trace::stream::ColumnarSink::create(std::path::Path::new(out)) {
            Ok(s) => (Box::new(s), "binary columnar"),
            Err(e) => {
                eprintln!("error: cannot write {out}: {e}");
                return false;
            }
        }
    } else {
        match wavesim_trace::stream::JsonlSink::create(std::path::Path::new(out)) {
            Ok(s) => (Box::new(s), "JSONL"),
            Err(e) => {
                eprintln!("error: cannot write {out}: {e}");
                return false;
            }
        }
    };
    let mut n: u64 = 0;
    while let Some(rec) = reader.next_record() {
        match rec {
            Ok(r) => {
                sink.record(r);
                n += 1;
            }
            Err(e) => {
                eprintln!("error: {input}: {e}");
                return false;
            }
        }
    }
    if let Err(e) = sink.finish() {
        eprintln!("error: cannot write {out}: {e}");
        return false;
    }
    let bytes = std::fs::metadata(out).map_or(0, |m| m.len());
    println!("converted {input} -> {out}: {n} records as {what} ({bytes} bytes)");
    true
}

/// Loads and applies `--fault-plan` / `--fault-schedule` files onto the
/// run's network, surfacing mismatches against the chosen topology/`k`
/// (a plan built for another network) as clean errors.
fn apply_fault_inputs(net: &mut WaveNetwork, args: &Args) -> bool {
    if let Some(path) = &args.fault_plan {
        let plan = match std::fs::File::open(path).map_err(|e| format!("cannot open: {e}")) {
            Ok(f) => match wavesim_workloads::trace_io::load_fault_plan(f) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: fault plan {path}: {e}");
                    return false;
                }
            },
            Err(e) => {
                eprintln!("error: fault plan {path}: {e}");
                return false;
            }
        };
        for &(link, s) in &plan.lanes {
            if let Err(e) = net.inject_lane_fault(LaneId::new(link, s)) {
                eprintln!("error: fault plan {path} does not fit this network: {e}");
                return false;
            }
        }
        println!(
            "applied static fault plan: {path} ({} lanes on {} links)",
            plan.len(),
            plan.faulted_links()
        );
    }
    if let Some(path) = &args.fault_schedule {
        let sched = match std::fs::File::open(path).map_err(|e| format!("cannot open: {e}")) {
            Ok(f) => match wavesim_workloads::trace_io::load_fault_schedule(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: fault schedule {path}: {e}");
                    return false;
                }
            },
            Err(e) => {
                eprintln!("error: fault schedule {path}: {e}");
                return false;
            }
        };
        if let Err(e) = sched.validate(net.topology(), net.config().k) {
            eprintln!("error: fault schedule {path} does not fit this network: {e}");
            return false;
        }
        if let Err(e) = wavesim_bench::apply_fault_schedule(net, &sched) {
            eprintln!("error: fault schedule {path} does not fit this network: {e}");
            return false;
        }
        println!("scheduled dynamic faults: {path} ({} events)", sched.len());
    }
    true
}

/// Builds the watchdog rule set from the `--watch-*` flags.
fn watchdog_config(args: &Args) -> wavesim_bench::watchdog::WatchdogConfig {
    wavesim_bench::watchdog::WatchdogConfig {
        stall_cycles: args.watch_stall,
        retry_limit: args.watch_retries,
        imbalance: args.watch_imbalance,
        deadlock: args.watch_deadlock,
        abort: args.watch_abort,
        post_mortem: args.watch_postmortem.as_ref().map(std::path::PathBuf::from),
    }
}

/// Arms the live-status board and (with `--serve-metrics`) binds the HTTP
/// endpoint. Everything the plane emits goes to stderr or the socket, so
/// stdout stays byte-identical to an unserved run.
fn arm_live_plane(args: &Args) -> bool {
    if args.live_status || args.serve_metrics.is_some() {
        wavesim_bench::livestate::arm(args.live_status);
    }
    if let Some(addr) = &args.serve_metrics {
        match wavesim_bench::serve::serve(addr) {
            Ok(local) => {
                eprintln!("serving live metrics on http://{local}/metrics (JSON status at /status)")
            }
            Err(e) => {
                eprintln!("error: --serve-metrics {addr}: {e}");
                return false;
            }
        }
    }
    true
}

/// Prints every watched run's trips; returns `true` when any trip aborted
/// a run (the caller turns that into a nonzero exit).
fn print_watchdog_reports() -> bool {
    let mut aborted = false;
    for rep in wavesim_bench::watchdog::take_reports() {
        for t in &rep.trips {
            let name = match t.rule {
                1 => "stall",
                2 => "retry-storm",
                3 => "shard-imbalance",
                4 => "wait-cycle",
                _ => "unknown",
            };
            println!(
                "watchdog: {name} tripped at cycle {}: {} > limit {}",
                t.at, t.value, t.limit
            );
        }
        if let Some(p) = &rep.post_mortem {
            println!("watchdog: wrote post-mortem bundle: {}", p.display());
        }
        if rep.aborted {
            println!("watchdog: run aborted");
            aborted = true;
        }
    }
    aborted
}

/// What a `run` invocation produced: the open-loop and replay modes share
/// [`wavesim_bench::RunResult`]; the closed-loop service mode has its own
/// round-trip accounting.
enum RunOutcome {
    /// Open-loop traffic or a dependency-trace replay.
    Flat(wavesim_bench::RunResult),
    /// Closed-loop service traffic.
    Service(wavesim_bench::ServiceResult),
}

fn custom_run(args: &Args) -> bool {
    if args.replay_trace.is_some() && args.service_clients.is_some() {
        eprintln!("error: --replay-trace and --service-clients are mutually exclusive");
        return false;
    }
    let replay = match &args.replay_trace {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => match wavesim_workloads::trace_io::load_dep_trace(f) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("error: replay trace {path}: {e}");
                    return false;
                }
            },
            Err(e) => {
                eprintln!("error: replay trace {path}: cannot open: {e}");
                return false;
            }
        },
        None => None,
    };
    let topo = if args.torus {
        Topology::torus(&[args.side, args.side])
    } else {
        Topology::mesh(&[args.side, args.side])
    };
    let cfg = WaveConfig {
        protocol: args.protocol,
        k: args.k,
        clock_multiplier: args.alpha,
        cache_capacity: args.cache,
        misroutes: args.misroutes,
        seed: args.seed,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(topo.clone(), cfg);
    net.set_shards(args.shards);
    if !apply_fault_inputs(&mut net, args) {
        return false;
    }
    if let Some(t) = &replay {
        let n = topo.num_nodes();
        if let Some(m) = t
            .messages
            .iter()
            .find(|m| m.msg.src.0 >= n || m.msg.dest.0 >= n)
        {
            eprintln!(
                "error: replay trace message {} uses node {} but this {}x{} network has {n} nodes (generate with a matching --side)",
                m.msg.id.0,
                m.msg.src.0.max(m.msg.dest.0),
                args.side,
                args.side,
            );
            return false;
        }
    }
    let warmup = args.cycles / 5;
    let tracing = args.trace_out.is_some()
        || args.metrics_out.is_some()
        || args.trace_jsonl.is_some()
        || args.trace_bin.is_some();
    let sampling = args.timeseries_out.is_some() || args.progress.is_some();
    if tracing {
        tracecap::arm_flight_recorder(args.flight_recorder);
    }
    if let Some(path) = &args.trace_jsonl {
        if let Err(e) = tracecap::arm_jsonl_stream(std::path::Path::new(path)) {
            eprintln!("error: cannot stream to {path}: {e}");
            return false;
        }
    }
    if let Some(path) = &args.trace_bin {
        if let Err(e) = tracecap::arm_bin_stream(std::path::Path::new(path), args.trace_sample) {
            eprintln!("error: cannot stream to {path}: {e}");
            return false;
        }
    } else if args.trace_sample > 1 {
        eprintln!("note: --trace-sample applies to --trace-bin only; ignored");
    }
    if sampling {
        // --progress doubles as the status cadence and the window width,
        // so each printed line covers exactly one closed window.
        wavesim_bench::timeseries::arm_sampler(
            args.progress.unwrap_or(args.window),
            args.progress.is_some(),
        );
    }
    let watch = watchdog_config(args);
    if watch.any() {
        // A post-mortem bundle carries the flight recorder's tail, so make
        // sure one is recording even when no export flag armed it.
        if watch.post_mortem.is_some() && !tracing {
            tracecap::arm_flight_recorder(args.flight_recorder);
        }
        wavesim_bench::watchdog::arm(watch);
    }
    if !arm_live_plane(args) {
        return false;
    }
    let live_handle = if args.live_analyze {
        let (handle, sink) = wavesim_analyze::live_sink(wavesim_analyze::AnalyzeOptions {
            window: args.window,
            top_k: args.top,
            nodes: None,
            sample_factor: 1,
        });
        let mut slot = Some(sink);
        tracecap::arm_extra_sink(move || {
            Box::new(slot.take().expect("one live-analytics sink per run"))
        });
        Some(handle)
    } else {
        None
    };
    let outcome = if let Some(trace) = &replay {
        RunOutcome::Flat(wavesim_bench::run_dep_trace(
            &mut net,
            trace,
            RunSpec::replay(trace.horizon()),
        ))
    } else if let Some(clients) = args.service_clients {
        let mut wl = wavesim_workloads::ServiceWorkload::new(
            topo,
            wavesim_workloads::ServiceConfig {
                clients,
                locality: args.locality,
                seed: args.seed,
                ramp: warmup.max(1),
                stop_at: warmup + args.cycles,
                ..wavesim_workloads::ServiceConfig::default()
            },
        );
        RunOutcome::Service(wavesim_bench::run_service(
            &mut net,
            &mut wl,
            RunSpec::standard(warmup, args.cycles),
        ))
    } else {
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load: args.load,
                pattern: if args.locality > 0.0 {
                    TrafficPattern::HotPairs {
                        partners: 3,
                        locality: args.locality,
                    }
                } else {
                    TrafficPattern::Uniform
                },
                len: LengthDist::Fixed(args.len),
                seed: args.seed,
                stop_at: u64::MAX,
            },
        );
        RunOutcome::Flat(run_open_loop(
            &mut net,
            &mut src,
            RunSpec::standard(warmup, args.cycles),
        ))
    };
    if wavesim_bench::watchdog::armed() {
        wavesim_bench::watchdog::disarm();
    }
    let watchdog_aborted = print_watchdog_reports();
    let counters = if sampling {
        wavesim_bench::timeseries::disarm_sampler();
        let series = wavesim_bench::timeseries::take_series();
        let Some(series) = series else {
            eprintln!("error: sampler produced no series");
            return false;
        };
        if let Some(path) = &args.timeseries_out {
            let csv = wavesim_trace::timeseries::to_csv(&series.rows, series.nodes);
            if !write_file(path, &csv) {
                return false;
            }
            println!("wrote time series: {path} ({} windows)", series.rows.len());
        }
        wavesim_trace::timeseries::perfetto_counters(&series.rows, series.nodes)
    } else {
        Vec::new()
    };
    if tracing {
        tracecap::disarm_flight_recorder();
        let traces = tracecap::take_captured();
        let t = traces.last().expect("traced run captured");
        if let Some(path) = &args.trace_jsonl {
            match &t.stream_error {
                None => println!("wrote JSONL stream: {path} ({} records)", t.total),
                Some(e) => {
                    eprintln!("error: JSONL stream {path}: {e}");
                    return false;
                }
            }
        }
        if let Some(path) = &args.trace_bin {
            match &t.stream_error {
                None => {
                    if args.trace_sample > 1 {
                        println!(
                            "wrote binary stream: {path} ({} records emitted, bulk kinds sampled 1-in-{})",
                            t.total, args.trace_sample
                        );
                    } else {
                        println!("wrote binary stream: {path} ({} records)", t.total);
                    }
                }
                Some(e) => {
                    eprintln!("error: binary stream {path}: {e}");
                    return false;
                }
            }
        }
        if let Some(path) = &args.trace_out {
            if !export_trace(path, t, counters) {
                return false;
            }
        }
        if let Some(path) = &args.metrics_out {
            match &outcome {
                RunOutcome::Flat(r) => {
                    let page = wavesim_bench::metrics::metrics_snapshot(&net, r, &t.records);
                    if !write_file(path, &page) {
                        return false;
                    }
                    println!("wrote metrics: {path}");
                }
                RunOutcome::Service(_) => {
                    eprintln!("note: --metrics-out applies to open-loop and replay runs; ignored");
                }
            }
        }
    }
    let mode = if let Some(path) = &args.replay_trace {
        format!("replay of {path}")
    } else if let Some(clients) = args.service_clients {
        format!("service ({clients} clients)")
    } else {
        "single run".to_string()
    };
    println!(
        "{mode}: {:?} on {}x{} {}",
        args.protocol,
        args.side,
        args.side,
        if args.torus { "torus" } else { "mesh" }
    );
    let (s, ok) = match &outcome {
        RunOutcome::Flat(r) => {
            if let Some(trace) = &replay {
                println!(
                    "  trace            : {} messages, {} roots, horizon {}",
                    trace.len(),
                    trace.num_roots(),
                    trace.horizon()
                );
            } else {
                println!(
                    "  offered load     : {} flits/node/cycle (len {} flits, locality {})",
                    args.load, args.len, args.locality
                );
            }
            println!("  sent / delivered : {} / {}", r.sent, r.delivered);
            println!(
                "  avg latency      : {:.1} cycles (p99 <= {})",
                r.avg_latency, r.p99_latency
            );
            if replay.is_some() {
                println!("  makespan         : {} cycles", r.end);
            } else {
                println!("  accepted thpt    : {:.3} flits/node/cycle", r.throughput);
            }
            println!("  circuit fraction : {:.1}%", r.circuit_fraction * 100.0);
            (r.wave, r.clean())
        }
        RunOutcome::Service(r) => {
            println!(
                "  requests         : {} issued / {} completed ({} clients retired)",
                r.requests, r.completed, r.retired
            );
            println!(
                "  avg round trip   : {:.1} cycles (p99 <= {})",
                r.avg_round_trip, r.p99_round_trip
            );
            (
                r.wave,
                r.drained && !r.stalled && (r.completed > 0 || r.requests == 0),
            )
        }
    };
    println!(
        "  probes {} (ok {} / exhausted {}), backtracks {}, misroutes {}",
        s.probes_sent, s.probes_reached, s.probes_exhausted, s.probe_backtracks, s.probe_misroutes
    );
    println!(
        "  cache hits {} / misses {} / evictions {}; forced releases {} local + {} remote",
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.forced_local_releases,
        s.forced_remote_releases
    );
    if args.fault_plan.is_some() || args.fault_schedule.is_some() {
        println!(
            "  faults: {} lane failures, {} repairs; {} circuits broken, {} retries",
            s.lane_faults, s.lane_repairs, s.circuits_broken, s.establish_retries
        );
    }
    let ok = ok && !watchdog_aborted;
    println!(
        "  verdict          : {}",
        if ok { "CLEAN" } else { "CHECK FAILED" }
    );
    if let Some(handle) = &live_handle {
        tracecap::disarm_extra_sink();
        match wavesim_analyze::take_analysis(handle) {
            Some(a) => {
                println!();
                println!("live analytics (folded during the run):");
                print!("{}", wavesim_analyze::report::render(&a));
            }
            None => {
                eprintln!("error: live analytics produced no analysis");
                return false;
            }
        }
    }
    ok
}

/// `wavesim gen-trace --collective C [--side N] [--len N] [--seed N]
/// --out FILE` — emits one of E15's dependency-aware collective traces
/// for `run --replay-trace`. A `.jsonl` output name selects the
/// line-oriented stream format; anything else gets the pretty JSON
/// document (`load_dep_trace` sniffs either back in by content).
fn gen_trace_cmd(args: &Args) -> bool {
    let Some(which) = &args.collective else {
        eprintln!(
            "error: gen-trace needs --collective all-to-all|reduce|broadcast|transpose-sweep"
        );
        return false;
    };
    let Some(out) = &args.out else {
        eprintln!("error: gen-trace needs --out FILE");
        return false;
    };
    let known = ["all-to-all", "reduce", "broadcast", "transpose-sweep"];
    if !known.contains(&which.as_str()) {
        eprintln!(
            "error: unknown collective {which:?} (use {})",
            known.join("|")
        );
        return false;
    }
    let topo = if args.torus {
        Topology::torus(&[args.side, args.side])
    } else {
        Topology::mesh(&[args.side, args.side])
    };
    // transpose-sweep draws per-phase destinations from --seed; the tree
    // collectives are fully determined by the topology.
    let trace = if which == "transpose-sweep" {
        wavesim_workloads::collectives::pattern_sweep(
            &topo,
            TrafficPattern::Transpose,
            3,
            args.len,
            args.seed,
        )
    } else {
        experiments::e15_collectives::build_trace(&topo, which, args.len)
    };
    let file = match std::fs::File::create(out) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            return false;
        }
    };
    let res = if out.ends_with(".jsonl") {
        wavesim_workloads::trace_io::save_dep_trace_jsonl(&trace, file)
    } else {
        wavesim_workloads::trace_io::save_dep_trace(&trace, file)
    };
    if let Err(e) = res {
        eprintln!("error: cannot write {out}: {e}");
        return false;
    }
    println!(
        "wrote {which} trace: {out} ({} messages, {} roots, horizon {})",
        trace.len(),
        trace.num_roots(),
        trace.horizon()
    );
    true
}

/// `wavesim analyze` — turns a captured record stream (JSONL or binary
/// columnar, sniffed by content) into the analytics report (tables on
/// stdout or `--report`, machine JSON via `--json`, windowed CSV via
/// `--timeseries`).
fn analyze_cmd(args: &Args) -> bool {
    let Some(path) = &args.trace_in else {
        eprintln!(
            "error: analyze needs --trace FILE (a stream from `run --trace-jsonl` or `run --trace-bin`)"
        );
        return false;
    };
    // Stream the capture record-by-record into the incremental engine:
    // peak memory is one frame, whatever the capture size, and the result
    // is identical to the offline fold by construction.
    use wavesim_trace::stream::TraceReader as _;
    let mut reader = match wavesim_trace::stream::stream_trace_file(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return false;
        }
    };
    let mut live = wavesim_analyze::LiveAnalytics::new(wavesim_analyze::AnalyzeOptions {
        window: args.window,
        top_k: args.top,
        nodes: None,
        sample_factor: args.trace_sample.max(1),
    });
    while let Some(rec) = reader.next_record() {
        match rec {
            Ok(r) => live.fold(&r),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return false;
            }
        }
    }
    let analysis = live.finish();
    let report = wavesim_analyze::report::render(&analysis);
    match &args.report_out {
        Some(out) => {
            if !write_file(out, &report) {
                return false;
            }
            println!("wrote report: {out}");
        }
        None => print!("{report}"),
    }
    if let Some(out) = &args.json_out {
        let doc = wavesim_analyze::report::to_json(&analysis);
        if !write_file(out, &doc.pretty()) {
            return false;
        }
        println!("wrote analysis JSON: {out}");
    }
    if let Some(out) = &args.timeseries_csv {
        let csv = wavesim_trace::timeseries::to_csv(&analysis.series, analysis.nodes);
        if !write_file(out, &csv) {
            return false;
        }
        println!(
            "wrote time series: {out} ({} windows)",
            analysis.series.len()
        );
    }
    true
}

fn run_experiments(ids: &[&str], scale: Scale, json: bool, jobs: usize, args: &Args) -> bool {
    let tracing =
        args.trace_out.is_some() || args.trace_jsonl.is_some() || args.trace_bin.is_some();
    let watch = watchdog_config(args);
    let jobs = if (tracing || watch.any()) && jobs > 1 {
        eprintln!("note: tracing and watchdogs force --jobs 1 (both are thread-local)");
        1
    } else {
        jobs
    };
    if args.metrics_out.is_some() {
        eprintln!("note: --metrics-out applies to `run` only; ignored for experiments");
    }
    if args.live_analyze {
        eprintln!("note: --live-analyze applies to `run` only; ignored for experiments");
    }
    if !arm_live_plane(args) {
        return false;
    }
    if watch.any() {
        wavesim_bench::watchdog::arm(watch);
    }
    if tracing {
        tracecap::arm_flight_recorder(args.flight_recorder);
    }
    if let Some(path) = &args.trace_jsonl {
        // Re-streamed per run: after the sweep the file holds the last
        // point, matching the flight-recorder export below.
        if let Err(e) = tracecap::arm_jsonl_stream_per_run(std::path::Path::new(path)) {
            eprintln!("error: cannot stream to {path}: {e}");
            return false;
        }
    }
    if let Some(path) = &args.trace_bin {
        if let Err(e) =
            tracecap::arm_bin_stream_per_run(std::path::Path::new(path), args.trace_sample)
        {
            eprintln!("error: cannot stream to {path}: {e}");
            return false;
        }
    } else if tracing && args.trace_sample > 1 {
        eprintln!("note: --trace-sample applies to --trace-bin only; ignored");
    }
    for id in ids {
        for table in experiments::run_by_id_with_jobs(id, scale, jobs) {
            if json {
                println!("{}", table.to_json().pretty());
            } else {
                table.print();
            }
        }
    }
    if wavesim_bench::watchdog::armed() {
        wavesim_bench::watchdog::disarm();
    }
    let watchdog_aborted = print_watchdog_reports();
    if tracing {
        tracecap::disarm_flight_recorder();
        tracecap::disarm_jsonl_stream();
        tracecap::disarm_bin_stream();
        let traces = tracecap::take_captured();
        // Experiments drive many runs; export the last one (for sweeps
        // this is the highest point — the most loaded, most interesting
        // trace).
        match traces.last() {
            Some(t) => {
                if let Some(path) = &args.trace_jsonl {
                    match &t.stream_error {
                        None => println!("wrote JSONL stream: {path} ({} records)", t.total),
                        Some(e) => {
                            eprintln!("error: JSONL stream {path}: {e}");
                            return false;
                        }
                    }
                }
                if let Some(path) = &args.trace_bin {
                    match &t.stream_error {
                        None => println!("wrote binary stream: {path} ({} records)", t.total),
                        Some(e) => {
                            eprintln!("error: binary stream {path}: {e}");
                            return false;
                        }
                    }
                }
                if let Some(path) = &args.trace_out {
                    if !export_trace(path, t, Vec::new()) {
                        return false;
                    }
                }
            }
            None => eprintln!("note: no run captured; no trace written"),
        }
    }
    !watchdog_aborted
}

/// Builds a model-checker spec from the CLI flags. `--model` selects the
/// protocol automaton; `probe` is CLRP with the Force phase disabled, so
/// what is exercised is pure MB-m backtracking (Theorem 3's machinery).
fn model_spec(args: &Args) -> Result<wavesim_model::ModelSpec, String> {
    use wavesim_model::{ModelProtocol, ModelSpec, Mutation};
    let protocol = match args.model.as_deref() {
        Some("clrp") => ModelProtocol::Clrp,
        Some("carp") => ModelProtocol::Carp,
        Some("probe") => ModelProtocol::ClrpNoForce,
        Some(other) => return Err(format!("unknown model `{other}` (clrp | carp | probe)")),
        None => return Err("missing --model".into()),
    };
    // Exhaustive exploration wants the smallest non-degenerate fabric:
    // 2x2 mesh, 3x3 torus (the torus constructor requires radix >= 3).
    let side = if args.side_set {
        args.side
    } else if args.torus {
        3
    } else {
        2
    };
    let topo = if args.torus {
        Topology::torus(&[side, side])
    } else {
        Topology::mesh(&[side, side])
    };
    let mut spec = ModelSpec::new(topo, protocol, args.k);
    if args.msg_list.is_empty() {
        spec = spec.msgs_from_pattern(TrafficPattern::Uniform, args.msgs, args.seed);
    } else {
        for m in &args.msg_list {
            let (s, d) = m
                .split_once(':')
                .ok_or_else(|| format!("--msg wants SRC:DEST, got `{m}`"))?;
            let s: u32 = s.parse().map_err(|_| format!("bad --msg source `{s}`"))?;
            let d: u32 = d.parse().map_err(|_| format!("bad --msg dest `{d}`"))?;
            spec = spec.msg(s, d);
        }
    }
    if let Some(m) = &args.mutate {
        spec = spec.mutate(Mutation::parse(m)?);
    }
    if args.fault {
        spec = spec.fault_on_first_path(args.repair);
    }
    Ok(spec)
}

/// Writes a counterexample's concrete replay trace (JSONL, or `WSTRACE1`
/// columnar when the path ends in `.bin`), ready for `validate-trace`.
fn write_counterexample(
    spec: &wavesim_model::ModelSpec,
    cx: &wavesim_model::Counterexample,
    path: &str,
) -> bool {
    let rep = wavesim_model::replay_schedule(spec, &cx.schedule);
    let ok = if path.ends_with(".bin") {
        std::fs::write(path, rep.columnar()).map_err(|e| e.to_string())
    } else {
        std::fs::write(path, rep.jsonl()).map_err(|e| e.to_string())
    };
    if let Err(e) = ok {
        eprintln!("error: cannot write {path}: {e}");
        return false;
    }
    println!(
        "wrote counterexample replay trace: {path} ({} records; real network {})",
        rep.records.len(),
        if rep.survived() {
            "survives the stimulus — the flaw is model-only"
        } else {
            "reproduces the failure"
        }
    );
    true
}

/// Describes a model spec on one line (header for check/fuzz output).
fn describe_spec(spec: &wavesim_model::ModelSpec) -> String {
    format!(
        "model={:?} k={} msgs={:?} fault={:?} mutation={}",
        spec.protocol,
        spec.k,
        spec.msgs
            .iter()
            .map(|(s, d)| (s.0, d.0))
            .collect::<Vec<_>>(),
        spec.fault,
        spec.mutation.name(),
    )
}

/// Exhaustive model check (`wavesim check --model …`). Returns `false`
/// (nonzero exit) on violation or an exhausted state budget.
fn model_check(args: &Args) -> bool {
    let spec = match model_spec(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    println!("exhaustive model check: {}", describe_spec(&spec));
    let out = wavesim_model::check(&spec, args.max_states);
    println!(
        "explored {} states / {} transitions, depth {}, {} wait-graphs checked",
        out.states, out.transitions, out.depth, out.wait_checked
    );
    println!("{}", out.verdict());
    if let Some(cx) = &out.violation {
        let cx = wavesim_model::shrink(&spec, cx);
        println!("shrunk schedule ({} actions):", cx.schedule.len());
        print!("{}", cx.render());
        if let Some(path) = &args.counterexample {
            if !write_counterexample(&spec, &cx, path) {
                return false;
            }
        }
        return false;
    }
    out.proved()
}

/// Randomized schedule fuzzing (`wavesim fuzz`). Returns `false` on a
/// violation.
fn fuzz_cmd(args: &Args) -> bool {
    let spec = match model_spec(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    println!("schedule fuzz: {}", describe_spec(&spec));
    let cfg = wavesim_model::FuzzConfig {
        seed: args.seed,
        runs: args.runs,
        max_steps: args.steps,
        fault_churn: !args.fault,
    };
    let out = wavesim_model::fuzz(&spec, &cfg);
    println!("{}", out.verdict());
    if let Some((variant, cx)) = &out.violation {
        println!("violating variant: {}", describe_spec(variant));
        println!("shrunk schedule ({} actions):", cx.schedule.len());
        print!("{}", cx.render());
        if let Some(path) = &args.counterexample {
            if !write_counterexample(variant, cx, path) {
                return false;
            }
        }
        return false;
    }
    true
}

fn static_checks(side: u16) -> bool {
    let mut ok = true;
    let cases: Vec<(String, Topology, RoutingKind, u8)> = vec![
        (
            format!("{side}x{side} mesh, deterministic DOR"),
            Topology::mesh(&[side, side]),
            RoutingKind::Deterministic,
            2,
        ),
        (
            format!("{side}x{side} torus, dateline DOR"),
            Topology::torus(&[side, side]),
            RoutingKind::Deterministic,
            2,
        ),
        (
            format!("{side}x{side} mesh, Duato adaptive"),
            Topology::mesh(&[side, side]),
            RoutingKind::Adaptive,
            3,
        ),
        (
            format!("{side}x{side} torus, Duato adaptive"),
            Topology::torus(&[side, side]),
            RoutingKind::Adaptive,
            3,
        ),
    ];
    println!("static channel-dependency-graph checks (paper §4 grounding):");
    for (name, topo, kind, w) in cases {
        let routing = kind.build(&topo, w);
        let rep = check_deadlock_freedom(&topo, routing.as_ref());
        println!(
            "  {name:<40} mode={:?} vertices={} edges={} -> {}",
            rep.mode,
            rep.vertices,
            rep.edges,
            if rep.deadlock_free {
                "DEADLOCK-FREE"
            } else {
                ok = false;
                "CYCLE FOUND"
            }
        );
    }
    ok
}

fn info() {
    let cfg = WaveConfig::default();
    println!("wavesim — wave switching (Duato/Lopez/Yalamanchili, IPPS'97) reproduction");
    println!("default configuration:");
    println!("  wave switches per router (k) : {}", cfg.k);
    println!("  wave clock multiplier (alpha): {}", cfg.clock_multiplier);
    println!("  channel split (sigma)        : {}", cfg.channel_split);
    println!(
        "  per-circuit lane bandwidth   : {}/{} flits/cycle",
        cfg.lane_rate().0,
        cfg.lane_rate().1
    );
    println!("  windowing window             : {} flits", cfg.window);
    println!("  MB-m misroute budget (m)     : {}", cfg.misroutes);
    println!("  circuit cache entries/node   : {}", cfg.cache_capacity);
    println!("  replacement policy           : {:?}", cfg.replacement);
    println!("  wormhole VCs per link (w)    : {}", cfg.wormhole.w);
    println!(
        "  wormhole buffer depth        : {}",
        cfg.wormhole.buffer_depth
    );
    println!();
    println!("experiments: {}", experiments::all_ids().join(", "));
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.cmd.as_str() {
        "all" => {
            if !run_experiments(
                &experiments::all_ids(),
                args.scale,
                args.json,
                args.jobs,
                &args,
            ) {
                return ExitCode::FAILURE;
            }
        }
        "check" => {
            let ok = if args.model.is_some() {
                model_check(&args)
            } else {
                static_checks(args.side)
            };
            if !ok {
                return ExitCode::FAILURE;
            }
        }
        "fuzz" => {
            if !fuzz_cmd(&args) {
                return ExitCode::FAILURE;
            }
        }
        "info" => info(),
        "run" => {
            if !custom_run(&args) {
                return ExitCode::FAILURE;
            }
        }
        "gen-trace" => {
            if !gen_trace_cmd(&args) {
                return ExitCode::FAILURE;
            }
        }
        "analyze" => {
            if !analyze_cmd(&args) {
                return ExitCode::FAILURE;
            }
        }
        "validate-trace" => {
            let path = args.path.clone().unwrap_or_else(|| usage());
            if !validate_trace(&path) {
                return ExitCode::FAILURE;
            }
        }
        "convert-trace" => {
            if !convert_trace(&args) {
                return ExitCode::FAILURE;
            }
        }
        id if experiments::all_ids().contains(&id) => {
            if !run_experiments(&[id], args.scale, args.json, args.jobs, &args) {
                return ExitCode::FAILURE;
            }
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}
