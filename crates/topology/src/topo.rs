//! Concrete k-ary n-cube topologies: meshes, tori, hypercubes.
//!
//! A topology maps between dense node ids and mixed-radix coordinates,
//! enumerates the unidirectional physical links, and answers the geometric
//! questions the routing layers ask: neighbours, minimal offsets, distances,
//! and torus dateline crossings.

use crate::coords::{Coords, Dir, MAX_DIMS};

/// Dense node identifier (row-major mixed-radix index of the coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An output port of a router: a dimension plus a travel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortDir {
    /// Dimension index.
    pub dim: u8,
    /// Travel direction along that dimension.
    pub dir: Dir,
}

impl PortDir {
    /// Convenience constructor.
    #[must_use]
    pub fn new(dim: usize, dir: Dir) -> Self {
        Self {
            dim: dim as u8,
            dir,
        }
    }

    /// Dense index of this port within a router: `dim * 2 + dir`.
    #[must_use]
    pub fn index(self) -> usize {
        self.dim as usize * 2 + self.dir.index()
    }

    /// Inverse of [`PortDir::index`].
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        Self {
            dim: (i / 2) as u8,
            dir: Dir::from_index(i % 2),
        }
    }

    /// The port a flit arriving over this output enters at the neighbour
    /// (same dimension, opposite direction).
    #[must_use]
    pub fn opposite(self) -> Self {
        Self {
            dim: self.dim,
            dir: self.dir.opposite(),
        }
    }
}

impl std::fmt::Display for PortDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sign = match self.dir {
            Dir::Plus => '+',
            Dir::Minus => '-',
        };
        write!(f, "X{}{}", self.dim, sign)
    }
}

/// Dense identifier of a unidirectional physical link, derived from its
/// source node and output port: `node * 2·ndims + port.index()`.
///
/// Ids are allocated for *all* (node, port) slots; mesh boundary slots have
/// no link — check [`Topology::has_link`] before use. Dense ids let the
/// fabric index per-link state with flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// The shape family of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// k-ary n-dimensional mesh (no wraparound links).
    Mesh,
    /// k-ary n-dimensional torus (wraparound links in every dimension).
    Torus,
}

/// A concrete k-ary n-cube topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    radices: Vec<u16>,
    strides: Vec<u32>,
    nodes: u32,
}

impl Topology {
    fn build(kind: TopologyKind, radices: &[u16]) -> Self {
        assert!(!radices.is_empty(), "topology needs at least one dimension");
        assert!(
            radices.len() <= MAX_DIMS,
            "at most {MAX_DIMS} dimensions supported"
        );
        assert!(
            radices.iter().all(|&r| r >= 2),
            "every dimension needs radix >= 2"
        );
        if kind == TopologyKind::Torus {
            assert!(
                radices.iter().all(|&r| r >= 3),
                "torus radix must be >= 3 (radix-2 torus duplicates links; use a mesh/hypercube)"
            );
        }
        let mut strides = Vec::with_capacity(radices.len());
        let mut acc: u32 = 1;
        for &r in radices {
            strides.push(acc);
            acc = acc
                .checked_mul(u32::from(r))
                .expect("node count overflowed u32");
        }
        Self {
            kind,
            radices: radices.to_vec(),
            strides,
            nodes: acc,
        }
    }

    /// A k-ary n-dimensional mesh, e.g. `Topology::mesh(&\[8, 8\])`.
    #[must_use]
    pub fn mesh(radices: &[u16]) -> Self {
        Self::build(TopologyKind::Mesh, radices)
    }

    /// A k-ary n-dimensional torus, e.g. `Topology::torus(&\[8, 8\])`.
    #[must_use]
    pub fn torus(radices: &[u16]) -> Self {
        Self::build(TopologyKind::Torus, radices)
    }

    /// An n-dimensional hypercube (binary n-cube): the radix-2 mesh, where
    /// mesh and torus coincide.
    #[must_use]
    pub fn hypercube(ndims: usize) -> Self {
        Self::build(TopologyKind::Mesh, &vec![2u16; ndims])
    }

    /// The shape family.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of dimensions.
    #[must_use]
    pub fn ndims(&self) -> usize {
        self.radices.len()
    }

    /// Radix (nodes per ring/row) of dimension `dim`.
    #[must_use]
    pub fn radix(&self, dim: usize) -> u16 {
        self.radices[dim]
    }

    /// Total number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.nodes
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn coords(&self, node: NodeId) -> Coords {
        assert!(node.0 < self.nodes, "node {node} out of range");
        let mut rem = node.0;
        let mut vals = [0u16; MAX_DIMS];
        for (i, &r) in self.radices.iter().enumerate() {
            vals[i] = (rem % u32::from(r)) as u16;
            rem /= u32::from(r);
        }
        Coords::new(&vals[..self.ndims()])
    }

    /// Node id of `coords`.
    ///
    /// # Panics
    /// Panics if the dimension count mismatches or a coordinate exceeds its
    /// radix.
    #[must_use]
    pub fn node(&self, coords: Coords) -> NodeId {
        assert_eq!(coords.ndims(), self.ndims(), "dimension count mismatch");
        let mut id = 0u32;
        for (i, &c) in coords.as_slice().iter().enumerate() {
            assert!(
                c < self.radices[i],
                "coordinate {c} exceeds radix in dim {i}"
            );
            id += u32::from(c) * self.strides[i];
        }
        NodeId(id)
    }

    /// The neighbour of `node` across output port (`dim`, `dir`), or `None`
    /// at a mesh boundary.
    #[must_use]
    pub fn neighbor(&self, node: NodeId, port: PortDir) -> Option<NodeId> {
        let c = self.coords(node);
        let dim = port.dim as usize;
        let r = self.radices[dim];
        let cur = c.get(dim);
        let next = match (port.dir, self.kind) {
            (Dir::Plus, TopologyKind::Mesh) => {
                if cur + 1 >= r {
                    return None;
                }
                cur + 1
            }
            (Dir::Minus, TopologyKind::Mesh) => {
                if cur == 0 {
                    return None;
                }
                cur - 1
            }
            (Dir::Plus, TopologyKind::Torus) => (cur + 1) % r,
            (Dir::Minus, TopologyKind::Torus) => (cur + r - 1) % r,
        };
        let mut nc = c;
        nc.set(dim, next);
        Some(self.node(nc))
    }

    /// Number of (node, port) link *slots*, valid or not: `nodes · 2·ndims`.
    #[must_use]
    pub fn num_link_slots(&self) -> usize {
        self.nodes as usize * 2 * self.ndims()
    }

    /// Dense id of the link leaving `node` through `port` (which may be a
    /// boundary slot with no physical link — see [`Topology::has_link`]).
    #[must_use]
    pub fn link_id(&self, node: NodeId, port: PortDir) -> LinkId {
        LinkId(node.0 * (2 * self.ndims() as u32) + port.index() as u32)
    }

    /// Source node and output port of `link`.
    #[must_use]
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, PortDir) {
        let ports = 2 * self.ndims() as u32;
        (
            NodeId(link.0 / ports),
            PortDir::from_index((link.0 % ports) as usize),
        )
    }

    /// True when the (node, port) slot behind `link` has a physical link.
    /// Total over all link ids: out-of-range ids (from a fault plan built
    /// for a bigger network, say) are simply `false`, not a panic.
    #[must_use]
    pub fn has_link(&self, link: LinkId) -> bool {
        let (node, port) = self.link_endpoints(link);
        node.0 < self.nodes && self.neighbor(node, port).is_some()
    }

    /// Destination node of `link`.
    ///
    /// # Panics
    /// Panics if the link slot is a mesh boundary (no physical link).
    #[must_use]
    pub fn link_dest(&self, link: LinkId) -> NodeId {
        let (node, port) = self.link_endpoints(link);
        self.neighbor(node, port)
            .expect("link_dest called on a boundary slot")
    }

    /// Iterates over all *valid* unidirectional links.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.num_link_slots() as u32)
            .map(LinkId)
            .filter(|&l| self.has_link(l))
    }

    /// Reverse link of `link` (same physical wire pair, opposite direction).
    ///
    /// # Panics
    /// Panics on a boundary slot.
    #[must_use]
    pub fn reverse_link(&self, link: LinkId) -> LinkId {
        let (node, port) = self.link_endpoints(link);
        let dest = self
            .neighbor(node, port)
            .expect("reverse_link called on a boundary slot");
        self.link_id(dest, port.opposite())
    }

    /// Signed minimal offset along `dim` from `from` to `to`:
    /// positive ⇒ travel `Plus`, negative ⇒ travel `Minus`. On a torus the
    /// shorter way around is chosen; an exact tie resolves to `Plus`.
    #[must_use]
    pub fn offset(&self, from: NodeId, to: NodeId, dim: usize) -> i32 {
        let fc = i32::from(self.coords(from).get(dim));
        let tc = i32::from(self.coords(to).get(dim));
        let diff = tc - fc;
        match self.kind {
            TopologyKind::Mesh => diff,
            TopologyKind::Torus => {
                let r = i32::from(self.radices[dim]);
                let fwd = diff.rem_euclid(r); // hops going Plus
                let bwd = r - fwd; // hops going Minus (when fwd != 0)
                if fwd == 0 {
                    0
                } else if fwd <= bwd {
                    fwd
                } else {
                    -bwd
                }
            }
        }
    }

    /// All per-dimension minimal offsets from `from` to `to` — exactly the
    /// `X1-offset..Xn-offset` fields of the paper's routing probe (Fig. 4),
    /// kept up to date as the probe moves.
    #[must_use]
    pub fn offsets(&self, from: NodeId, to: NodeId) -> Vec<i32> {
        (0..self.ndims())
            .map(|d| self.offset(from, to, d))
            .collect()
    }

    /// Minimal-path hop distance between two nodes.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (0..self.ndims())
            .map(|d| self.offset(a, b, d).unsigned_abs())
            .sum()
    }

    /// Output ports on a minimal path from `from` toward `to`, lowest
    /// dimension first. Empty iff `from == to`.
    #[must_use]
    pub fn min_ports(&self, from: NodeId, to: NodeId) -> Vec<PortDir> {
        (0..self.ndims())
            .filter_map(|d| {
                let off = self.offset(from, to, d);
                if off > 0 {
                    Some(PortDir::new(d, Dir::Plus))
                } else if off < 0 {
                    Some(PortDir::new(d, Dir::Minus))
                } else {
                    None
                }
            })
            .collect()
    }

    /// All output ports of a node that have a physical link.
    #[must_use]
    pub fn ports_of(&self, node: NodeId) -> Vec<PortDir> {
        (0..2 * self.ndims())
            .map(PortDir::from_index)
            .filter(|&p| self.neighbor(node, p).is_some())
            .collect()
    }

    /// True when travelling from `node` in `port`'s direction toward the
    /// (minimal-path) destination coordinate still has to cross the torus
    /// dateline (the wrap link of that dimension). Used by the dateline
    /// VC-class assignment; always `false` on meshes.
    #[must_use]
    pub fn crosses_dateline(&self, node: NodeId, dest: NodeId, port: PortDir) -> bool {
        if self.kind == TopologyKind::Mesh {
            return false;
        }
        let dim = port.dim as usize;
        let c = self.coords(node).get(dim);
        let d = self.coords(dest).get(dim);
        match port.dir {
            Dir::Plus => c > d,
            Dir::Minus => c < d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_roundtrip() {
        let t = Topology::mesh(&[4, 3, 2]);
        assert_eq!(t.num_nodes(), 24);
        for n in t.nodes() {
            assert_eq!(t.node(t.coords(n)), n);
        }
        assert_eq!(t.coords(NodeId(0)).as_slice(), &[0, 0, 0]);
        assert_eq!(t.coords(NodeId(1)).as_slice(), &[1, 0, 0]);
        assert_eq!(t.coords(NodeId(4)).as_slice(), &[0, 1, 0]);
        assert_eq!(t.coords(NodeId(12)).as_slice(), &[0, 0, 1]);
    }

    #[test]
    fn mesh_boundary_has_no_neighbor() {
        let t = Topology::mesh(&[4, 4]);
        let corner = t.node(Coords::new(&[0, 0]));
        assert!(t.neighbor(corner, PortDir::new(0, Dir::Minus)).is_none());
        assert!(t.neighbor(corner, PortDir::new(1, Dir::Minus)).is_none());
        assert_eq!(
            t.neighbor(corner, PortDir::new(0, Dir::Plus)),
            Some(t.node(Coords::new(&[1, 0])))
        );
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::torus(&[4, 4]);
        let edge = t.node(Coords::new(&[3, 2]));
        assert_eq!(
            t.neighbor(edge, PortDir::new(0, Dir::Plus)),
            Some(t.node(Coords::new(&[0, 2])))
        );
        let zero = t.node(Coords::new(&[0, 0]));
        assert_eq!(
            t.neighbor(zero, PortDir::new(1, Dir::Minus)),
            Some(t.node(Coords::new(&[0, 3])))
        );
    }

    #[test]
    fn link_count_mesh_vs_torus() {
        let mesh = Topology::mesh(&[4, 4]);
        // 2D 4x4 mesh: per dim 3*4 bidirectional = 24 bidir total = 48 unidir.
        assert_eq!(mesh.links().count(), 48);
        let torus = Topology::torus(&[4, 4]);
        // Torus: every slot valid: 16 nodes * 4 ports = 64 unidir links.
        assert_eq!(torus.links().count(), 64);
        assert_eq!(torus.num_link_slots(), 64);
    }

    #[test]
    fn link_id_roundtrip_and_reverse() {
        let t = Topology::torus(&[4, 4]);
        for l in t.links() {
            let (n, p) = t.link_endpoints(l);
            assert_eq!(t.link_id(n, p), l);
            let r = t.reverse_link(l);
            assert_eq!(t.reverse_link(r), l, "reverse is an involution");
            assert_eq!(t.link_dest(r), n, "reverse link returns to source");
        }
    }

    #[test]
    fn mesh_offsets_are_plain_differences() {
        let t = Topology::mesh(&[8, 8]);
        let a = t.node(Coords::new(&[1, 6]));
        let b = t.node(Coords::new(&[5, 2]));
        assert_eq!(t.offset(a, b, 0), 4);
        assert_eq!(t.offset(a, b, 1), -4);
        assert_eq!(t.distance(a, b), 8);
        assert_eq!(t.offsets(a, b), vec![4, -4]);
    }

    #[test]
    fn torus_offsets_take_short_way() {
        let t = Topology::torus(&[8, 8]);
        let a = t.node(Coords::new(&[1, 1]));
        let b = t.node(Coords::new(&[7, 1]));
        assert_eq!(t.offset(a, b, 0), -2, "wrap via 0 is shorter");
        assert_eq!(t.distance(a, b), 2);
        // Exact tie (offset 4 on radix 8) resolves to Plus.
        let c = t.node(Coords::new(&[5, 1]));
        assert_eq!(t.offset(a, c, 0), 4);
    }

    #[test]
    fn min_ports_empty_at_destination() {
        let t = Topology::mesh(&[4, 4]);
        let n = NodeId(5);
        assert!(t.min_ports(n, n).is_empty());
        let m = NodeId(6);
        assert_eq!(t.min_ports(n, m), vec![PortDir::new(0, Dir::Plus)]);
    }

    #[test]
    fn hypercube_is_radix2_mesh() {
        let h = Topology::hypercube(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.ndims(), 4);
        // Every node has exactly 4 neighbours, one per dimension.
        for n in h.nodes() {
            assert_eq!(h.ports_of(n).len(), 4);
        }
        // Distance equals Hamming distance of ids.
        for a in h.nodes() {
            for b in h.nodes() {
                assert_eq!(h.distance(a, b), (a.0 ^ b.0).count_ones());
            }
        }
    }

    #[test]
    fn dateline_detection() {
        let t = Topology::torus(&[8, 8]);
        let a = t.node(Coords::new(&[6, 0]));
        let b = t.node(Coords::new(&[1, 0]));
        // 6 -> 1 going Plus wraps through 7 -> 0.
        assert!(t.crosses_dateline(a, b, PortDir::new(0, Dir::Plus)));
        // 1 -> 6 going Minus wraps through 0 -> 7.
        assert!(t.crosses_dateline(b, a, PortDir::new(0, Dir::Minus)));
        // 1 -> 6 going Plus does not wrap.
        assert!(!t.crosses_dateline(b, a, PortDir::new(0, Dir::Plus)));
        let mesh = Topology::mesh(&[8, 8]);
        assert!(!mesh.crosses_dateline(NodeId(0), NodeId(7), PortDir::new(0, Dir::Plus)));
    }

    #[test]
    #[should_panic(expected = "radix must be >= 3")]
    fn radix2_torus_rejected() {
        let _ = Topology::torus(&[2, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_topology_rejected() {
        let _ = Topology::mesh(&[]);
    }

    #[test]
    fn ports_of_interior_and_corner() {
        let t = Topology::mesh(&[4, 4]);
        let interior = t.node(Coords::new(&[2, 2]));
        assert_eq!(t.ports_of(interior).len(), 4);
        let corner = t.node(Coords::new(&[0, 0]));
        assert_eq!(t.ports_of(corner).len(), 2);
    }
}
