//! Deadlock-free wormhole routing functions.
//!
//! The wave router's `S0` switch routes ordinary messages with a routing
//! algorithm that *must be deadlock-free* (paper §2). This module provides
//! the three classical options the paper cites:
//!
//! * [`DorMesh`] — dimension-order (e-cube) routing for meshes and
//!   hypercubes; acyclic channel dependencies by construction (Dally–Seitz,
//!   ref \[5\]);
//! * [`DorTorus`] — dimension-order routing for tori with the two-class
//!   *dateline* virtual-channel scheme that breaks ring cycles (ref \[5\]);
//! * [`DuatoAdaptive`] — minimal fully adaptive routing layered over an
//!   escape subnetwork running one of the above, per Duato's sufficient
//!   condition (refs \[8, 9\]).
//!
//! A routing function answers: *given a packet at `current` heading to
//! `dest`, which (output port, virtual channel) pairs may it take next?*
//! Routing is stateless in the packet (header offsets identify `dest`), so
//! candidate sets depend only on `(current, dest)` — exactly the setting of
//! Duato's theory, and what [`crate::cdg`] checks mechanically.

use crate::coords::Dir;
use crate::topo::{NodeId, PortDir, Topology};

/// One admissible next hop: an output port plus a virtual-channel index on
/// that port's link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Output port to take.
    pub port: PortDir,
    /// Virtual channel index within that link (`0..vcs_per_link`).
    pub vc: u8,
}

/// A wormhole routing function.
pub trait WormholeRouting: Send + Sync {
    /// Virtual channels per physical link this function requires/uses.
    fn vcs_per_link(&self) -> u8;

    /// Appends all admissible (port, vc) candidates for a packet at
    /// `current` heading to `dest` (`current != dest`), most-preferred
    /// first. Must append at least one candidate for every reachable pair.
    fn route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>);

    /// Appends the *escape* candidates — the deadlock-free subnetwork of
    /// Duato's condition. For deterministic functions this equals
    /// [`WormholeRouting::route`].
    fn escape_route(
        &self,
        topo: &Topology,
        current: NodeId,
        dest: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        self.route(topo, current, dest, out);
    }

    /// True when the function offers no routing freedom (candidates differ
    /// only in VC replication on a single port).
    fn is_deterministic(&self) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Dimension-order routing for meshes and hypercubes.
///
/// Corrects the lowest nonzero offset dimension first; within the chosen
/// port, all `vcs` virtual channels are interchangeable (replication does
/// not add dependencies, so acyclicity is preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DorMesh {
    /// Virtual channels per link (≥ 1); pure replication.
    pub vcs: u8,
}

impl DorMesh {
    /// Creates mesh DOR with `vcs` replicated virtual channels.
    ///
    /// # Panics
    /// Panics if `vcs == 0`.
    #[must_use]
    pub fn new(vcs: u8) -> Self {
        assert!(vcs >= 1, "mesh DOR needs at least one virtual channel");
        Self { vcs }
    }

    fn port_toward(topo: &Topology, current: NodeId, dest: NodeId) -> PortDir {
        for d in 0..topo.ndims() {
            let off = topo.offset(current, dest, d);
            if off > 0 {
                return PortDir::new(d, Dir::Plus);
            }
            if off < 0 {
                return PortDir::new(d, Dir::Minus);
            }
        }
        unreachable!("route() called with current == dest");
    }
}

impl WormholeRouting for DorMesh {
    fn vcs_per_link(&self) -> u8 {
        self.vcs
    }

    fn route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
        let port = Self::port_toward(topo, current, dest);
        for vc in 0..self.vcs {
            out.push(Candidate { port, vc });
        }
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "dor-mesh"
    }
}

/// Dimension-order routing for tori with dateline virtual-channel classes.
///
/// Each link carries `2 · replication` virtual channels: class 0 ("before
/// the dateline") occupies indices `0..replication`, class 1 ("after the
/// dateline") indices `replication..2·replication`. A packet travelling
/// along a ring uses class 0 while its remaining path still crosses the
/// wraparound link of that ring and class 1 afterwards, which removes the
/// cyclic dependency around each ring (Dally–Seitz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DorTorus {
    /// Virtual channels per class (≥ 1); total VCs per link is `2·replication`.
    pub replication: u8,
}

impl DorTorus {
    /// Creates torus DOR with `replication` VCs per dateline class.
    ///
    /// # Panics
    /// Panics if `replication == 0`.
    #[must_use]
    pub fn new(replication: u8) -> Self {
        assert!(
            replication >= 1,
            "torus DOR needs at least one VC per class"
        );
        Self { replication }
    }
}

impl WormholeRouting for DorTorus {
    fn vcs_per_link(&self) -> u8 {
        2 * self.replication
    }

    fn route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
        let port = DorMesh::port_toward(topo, current, dest);
        let class: u8 = u8::from(!topo.crosses_dateline(current, dest, port));
        for j in 0..self.replication {
            out.push(Candidate {
                port,
                vc: class * self.replication + j,
            });
        }
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "dor-torus"
    }
}

/// The escape routing function underneath [`DuatoAdaptive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeFn {
    /// Mesh/hypercube escape: single-VC dimension-order routing.
    Mesh,
    /// Torus escape: two-class dateline dimension-order routing.
    Torus,
}

/// Duato-style minimal fully adaptive routing.
///
/// Links carry `escape_vcs + adaptive_vcs` virtual channels. The adaptive
/// channels (high indices) admit *any* minimal direction; the escape
/// channels (low indices) follow the deterministic base function. Because a
/// packet may select an escape channel at every node, Duato's sufficient
/// condition for deadlock freedom holds (refs \[8, 9\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuatoAdaptive {
    escape: EscapeFn,
    adaptive_vcs: u8,
}

impl DuatoAdaptive {
    /// Creates an adaptive function with the given escape base and
    /// `adaptive_vcs` fully adaptive channels per link.
    ///
    /// # Panics
    /// Panics if `adaptive_vcs == 0` (use the base function directly).
    #[must_use]
    pub fn new(escape: EscapeFn, adaptive_vcs: u8) -> Self {
        assert!(adaptive_vcs >= 1, "adaptive function needs adaptive VCs");
        Self {
            escape,
            adaptive_vcs,
        }
    }

    fn escape_vcs(&self) -> u8 {
        match self.escape {
            EscapeFn::Mesh => 1,
            EscapeFn::Torus => 2,
        }
    }

    fn base_route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
        match self.escape {
            EscapeFn::Mesh => DorMesh::new(1).route(topo, current, dest, out),
            EscapeFn::Torus => DorTorus::new(1).route(topo, current, dest, out),
        }
    }
}

impl WormholeRouting for DuatoAdaptive {
    fn vcs_per_link(&self) -> u8 {
        self.escape_vcs() + self.adaptive_vcs
    }

    fn route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
        let base = self.escape_vcs();
        // Adaptive candidates: every minimal port, every adaptive VC.
        for port in topo.min_ports(current, dest) {
            for j in 0..self.adaptive_vcs {
                out.push(Candidate { port, vc: base + j });
            }
        }
        // Escape candidates last (least preferred, always present).
        self.base_route(topo, current, dest, out);
    }

    fn escape_route(
        &self,
        topo: &Topology,
        current: NodeId,
        dest: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        self.base_route(topo, current, dest, out);
    }

    fn is_deterministic(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "duato-adaptive"
    }
}

/// **Deliberately broken** torus routing: dimension-order with a single
/// virtual-channel class, ignoring the dateline.
///
/// The wraparound links close the textbook cyclic dependency around every
/// ring, so this function *can deadlock*. It exists as a negative control:
/// `wavesim-topology::cdg` must find its cycle and the runtime deadlock
/// detector in `wavesim-verify` must trip on it under saturation. Never use
/// it in a real configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveTorusDor {
    /// Virtual channels per link (pure replication — still deadlocks).
    pub vcs: u8,
}

impl NaiveTorusDor {
    /// Creates the broken function with `vcs` replicated channels.
    ///
    /// # Panics
    /// Panics if `vcs == 0`.
    #[must_use]
    pub fn new(vcs: u8) -> Self {
        assert!(vcs >= 1);
        Self { vcs }
    }
}

impl WormholeRouting for NaiveTorusDor {
    fn vcs_per_link(&self) -> u8 {
        self.vcs
    }

    fn route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
        let port = DorMesh::port_toward(topo, current, dest);
        for vc in 0..self.vcs {
            out.push(Candidate { port, vc });
        }
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "naive-torus-dor(BROKEN)"
    }
}

/// Serializable routing-function selector for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Deterministic dimension-order routing (mesh/hypercube or torus,
    /// chosen by the topology).
    Deterministic,
    /// Duato minimal fully adaptive routing over a deterministic escape.
    Adaptive,
}

impl RoutingKind {
    /// Builds the routing function for `topo` using `w` wormhole data VCs
    /// per link, mirroring the paper's `w` parameter.
    ///
    /// # Panics
    /// Panics when `w` is too small for the requested function on the given
    /// topology (torus DOR needs 2, adaptive needs one more than its escape).
    #[must_use]
    pub fn build(self, topo: &Topology, w: u8) -> Box<dyn WormholeRouting> {
        use crate::topo::TopologyKind;
        match (self, topo.kind()) {
            (RoutingKind::Deterministic, TopologyKind::Mesh) => Box::new(DorMesh::new(w)),
            (RoutingKind::Deterministic, TopologyKind::Torus) => {
                assert!(w >= 2, "torus DOR needs w >= 2 virtual channels, got {w}");
                assert!(
                    w.is_multiple_of(2),
                    "torus DOR replicates 2 classes; w must be even, got {w}"
                );
                Box::new(DorTorus::new(w / 2))
            }
            (RoutingKind::Adaptive, TopologyKind::Mesh) => {
                assert!(w >= 2, "adaptive mesh routing needs w >= 2, got {w}");
                Box::new(DuatoAdaptive::new(EscapeFn::Mesh, w - 1))
            }
            (RoutingKind::Adaptive, TopologyKind::Torus) => {
                assert!(w >= 3, "adaptive torus routing needs w >= 3, got {w}");
                Box::new(DuatoAdaptive::new(EscapeFn::Torus, w - 2))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Coords;

    fn candidates(
        r: &dyn WormholeRouting,
        topo: &Topology,
        from: &[u16],
        to: &[u16],
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        r.route(
            topo,
            topo.node(Coords::new(from)),
            topo.node(Coords::new(to)),
            &mut out,
        );
        out
    }

    #[test]
    fn dor_mesh_lowest_dimension_first() {
        let t = Topology::mesh(&[8, 8]);
        let r = DorMesh::new(2);
        let c = candidates(&r, &t, &[1, 1], &[5, 5]);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|c| c.port == PortDir::new(0, Dir::Plus)));
        // Dim 0 resolved: moves in dim 1.
        let c = candidates(&r, &t, &[5, 1], &[5, 5]);
        assert!(c.iter().all(|c| c.port == PortDir::new(1, Dir::Plus)));
        // Negative offsets go Minus.
        let c = candidates(&r, &t, &[5, 5], &[2, 5]);
        assert!(c.iter().all(|c| c.port == PortDir::new(0, Dir::Minus)));
    }

    #[test]
    fn dor_mesh_candidates_cover_all_vcs() {
        let t = Topology::mesh(&[4, 4]);
        let r = DorMesh::new(3);
        let c = candidates(&r, &t, &[0, 0], &[3, 0]);
        let vcs: Vec<u8> = c.iter().map(|c| c.vc).collect();
        assert_eq!(vcs, vec![0, 1, 2]);
    }

    #[test]
    fn dor_torus_dateline_classes() {
        let t = Topology::torus(&[8, 8]);
        let r = DorTorus::new(1);
        assert_eq!(r.vcs_per_link(), 2);
        // 6 -> 1 going Plus wraps: remaining path crosses dateline -> class 0.
        let c = candidates(&r, &t, &[6, 0], &[1, 0]);
        assert_eq!(
            c,
            vec![Candidate {
                port: PortDir::new(0, Dir::Plus),
                vc: 0
            }]
        );
        // 0 -> 1 after the wrap: no dateline ahead -> class 1.
        let c = candidates(&r, &t, &[0, 0], &[1, 0]);
        assert_eq!(
            c,
            vec![Candidate {
                port: PortDir::new(0, Dir::Plus),
                vc: 1
            }]
        );
        // Minus-direction wrap symmetric.
        let c = candidates(&r, &t, &[1, 0], &[6, 0]);
        assert_eq!(c[0].port, PortDir::new(0, Dir::Minus));
        assert_eq!(c[0].vc, 0);
    }

    #[test]
    fn dor_torus_replication_expands_classes() {
        let t = Topology::torus(&[4, 4]);
        let r = DorTorus::new(2);
        assert_eq!(r.vcs_per_link(), 4);
        let c = candidates(&r, &t, &[0, 0], &[1, 0]); // class 1 -> vcs {2,3}
        assert_eq!(c.iter().map(|c| c.vc).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn duato_adaptive_offers_all_minimal_ports_plus_escape() {
        let t = Topology::mesh(&[8, 8]);
        let r = DuatoAdaptive::new(EscapeFn::Mesh, 2);
        assert_eq!(r.vcs_per_link(), 3);
        let c = candidates(&r, &t, &[1, 1], &[4, 4]);
        // 2 minimal ports x 2 adaptive VCs + 1 escape candidate.
        assert_eq!(c.len(), 5);
        let adaptive: Vec<_> = c.iter().filter(|c| c.vc >= 1).collect();
        assert_eq!(adaptive.len(), 4);
        let ports: std::collections::HashSet<_> = adaptive.iter().map(|c| c.port).collect();
        assert!(ports.contains(&PortDir::new(0, Dir::Plus)));
        assert!(ports.contains(&PortDir::new(1, Dir::Plus)));
        // Escape candidate is DOR: dim 0 first, vc 0.
        let esc = c.last().unwrap();
        assert_eq!(esc.vc, 0);
        assert_eq!(esc.port, PortDir::new(0, Dir::Plus));
    }

    #[test]
    fn duato_escape_route_is_deterministic_base() {
        let t = Topology::torus(&[4, 4]);
        let r = DuatoAdaptive::new(EscapeFn::Torus, 1);
        let mut esc = Vec::new();
        r.escape_route(
            &t,
            t.node(Coords::new(&[0, 0])),
            t.node(Coords::new(&[1, 0])),
            &mut esc,
        );
        let base = DorTorus::new(1);
        let expect = candidates(&base, &t, &[0, 0], &[1, 0]);
        assert_eq!(esc, expect);
    }

    #[test]
    fn every_reachable_pair_has_candidates() {
        for topo in [Topology::mesh(&[4, 4]), Topology::torus(&[4, 4])] {
            let fns: Vec<Box<dyn WormholeRouting>> = vec![
                RoutingKind::Deterministic.build(&topo, 2),
                RoutingKind::Adaptive.build(&topo, 3),
            ];
            for r in &fns {
                for a in topo.nodes() {
                    for b in topo.nodes() {
                        if a == b {
                            continue;
                        }
                        let mut out = Vec::new();
                        r.route(&topo, a, b, &mut out);
                        assert!(!out.is_empty(), "{} gave no route {a}->{b}", r.name());
                        for c in &out {
                            assert!(c.vc < r.vcs_per_link());
                            assert!(
                                topo.neighbor(a, c.port).is_some(),
                                "candidate uses a boundary port"
                            );
                            // All candidates must be minimal.
                            let n = topo.neighbor(a, c.port).unwrap();
                            assert_eq!(topo.distance(n, b) + 1, topo.distance(a, b));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn build_selects_per_topology() {
        let mesh = Topology::mesh(&[4, 4]);
        let torus = Topology::torus(&[4, 4]);
        assert_eq!(RoutingKind::Deterministic.build(&mesh, 1).vcs_per_link(), 1);
        assert_eq!(
            RoutingKind::Deterministic.build(&torus, 4).vcs_per_link(),
            4
        );
        assert_eq!(RoutingKind::Adaptive.build(&mesh, 2).vcs_per_link(), 2);
        assert_eq!(RoutingKind::Adaptive.build(&torus, 3).vcs_per_link(), 3);
    }

    #[test]
    #[should_panic(expected = "w >= 2")]
    fn torus_dor_needs_two_vcs() {
        let torus = Topology::torus(&[4, 4]);
        let _ = RoutingKind::Deterministic.build(&torus, 1);
    }
}
