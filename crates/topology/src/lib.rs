//! # wavesim-topology — network shapes and routing functions
//!
//! Substrate #2/#3 of the reproduction: the k-ary n-cube family the paper's
//! routers live in (low-dimensional **meshes** and **tori**, plus
//! **hypercubes** as the radix-2 special case) and the deadlock-free
//! wormhole routing functions the protocols fall back on:
//!
//! * dimension-order (e-cube) routing for meshes and hypercubes
//!   (Dally & Seitz, ref \[5\] of the paper);
//! * two-class "dateline" dimension-order routing for tori;
//! * Duato-style fully adaptive routing with an escape subnetwork
//!   (refs \[8, 9\]).
//!
//! The [`cdg`] module implements the classical machinery used in the
//! paper's §4 proofs as *executable checks*: it builds the channel
//! dependency graph of a routing function over a concrete topology and
//! verifies the Dally–Seitz acyclicity condition (deterministic functions)
//! or Duato's escape-channel condition (adaptive functions).

#![warn(missing_docs)]

pub mod cdg;
pub mod coords;
pub mod routing;
pub mod topo;

pub use coords::{Coords, Dir, MAX_DIMS};
pub use routing::{
    Candidate, DorMesh, DorTorus, DuatoAdaptive, NaiveTorusDor, RoutingKind, WormholeRouting,
};
pub use topo::{LinkId, NodeId, PortDir, Topology, TopologyKind};
