//! Mixed-radix coordinates for k-ary n-cube nodes.
//!
//! A node of a k-ary n-cube is addressed by one coordinate per dimension.
//! Coordinates are a small fixed-capacity value type ([`Coords`]) so that
//! hot routing paths never allocate.

/// Maximum number of dimensions supported. The paper targets
/// low-dimensional topologies (2D/3D meshes and tori); eight dimensions
/// comfortably covers hypercubes up to 256 nodes as well.
pub const MAX_DIMS: usize = 8;

/// Travel direction along a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Increasing coordinate.
    Plus,
    /// Decreasing coordinate.
    Minus,
}

impl Dir {
    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::Plus => Dir::Minus,
            Dir::Minus => Dir::Plus,
        }
    }

    /// 0 for `Plus`, 1 for `Minus` (used for dense port indexing).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Dir::Plus => 0,
            Dir::Minus => 1,
        }
    }

    /// Inverse of [`Dir::index`].
    ///
    /// # Panics
    /// Panics if `i > 1`.
    #[must_use]
    pub fn from_index(i: usize) -> Dir {
        match i {
            0 => Dir::Plus,
            1 => Dir::Minus,
            _ => panic!("direction index {i} out of range"),
        }
    }
}

/// A point in a mixed-radix coordinate space; cheap to copy, never heap
/// allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    d: [u16; MAX_DIMS],
    n: u8,
}

impl Coords {
    /// Builds coordinates from a slice (one entry per dimension).
    ///
    /// # Panics
    /// Panics if `vals.len() > MAX_DIMS`.
    #[must_use]
    pub fn new(vals: &[u16]) -> Self {
        assert!(
            vals.len() <= MAX_DIMS,
            "at most {MAX_DIMS} dimensions supported, got {}",
            vals.len()
        );
        let mut d = [0u16; MAX_DIMS];
        d[..vals.len()].copy_from_slice(vals);
        Self {
            d,
            n: vals.len() as u8,
        }
    }

    /// Number of dimensions.
    #[must_use]
    pub fn ndims(&self) -> usize {
        self.n as usize
    }

    /// Coordinate along dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= ndims()`.
    #[must_use]
    pub fn get(&self, dim: usize) -> u16 {
        assert!(dim < self.ndims(), "dimension {dim} out of range");
        self.d[dim]
    }

    /// Sets the coordinate along `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= ndims()`.
    pub fn set(&mut self, dim: usize, val: u16) {
        assert!(dim < self.ndims(), "dimension {dim} out of range");
        self.d[dim] = val;
    }

    /// The coordinates as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u16] {
        &self.d[..self.ndims()]
    }

    /// Sum of coordinates — the paper's §3.1 suggests node `(x, y)` try
    /// initial switch `1 + (x + y) mod k`; this generalises to n dims.
    #[must_use]
    pub fn coord_sum(&self) -> u64 {
        self.as_slice().iter().map(|&c| u64::from(c)).sum()
    }
}

impl std::fmt::Display for Coords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let c = Coords::new(&[3, 5, 7]);
        assert_eq!(c.ndims(), 3);
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(2), 7);
        assert_eq!(c.as_slice(), &[3, 5, 7]);
        assert_eq!(c.coord_sum(), 15);
        assert_eq!(c.to_string(), "(3,5,7)");
    }

    #[test]
    fn set_updates() {
        let mut c = Coords::new(&[0, 0]);
        c.set(1, 9);
        assert_eq!(c.get(1), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let c = Coords::new(&[1]);
        let _ = c.get(1);
    }

    #[test]
    fn dir_roundtrip() {
        for d in [Dir::Plus, Dir::Minus] {
            assert_eq!(Dir::from_index(d.index()), d);
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_ne!(Dir::Plus, Dir::Minus);
    }

    #[test]
    fn zero_dims_is_legal_point() {
        let c = Coords::new(&[]);
        assert_eq!(c.ndims(), 0);
        assert_eq!(c.coord_sum(), 0);
    }
}
