//! Channel dependency graphs — the paper's proof machinery, executable.
//!
//! Section 4 of the paper grounds its deadlock-freedom theorems in the
//! classical theory: a *deterministic* wormhole routing function is
//! deadlock-free iff its **channel dependency graph** (CDG) is acyclic
//! (Dally & Seitz, ref \[5\]); an *adaptive* function is deadlock-free if
//! every candidate set contains a channel of a deadlock-free **escape**
//! subfunction (Duato, refs \[8, 9\]).
//!
//! This module builds the CDG of a routing function over a concrete
//! topology and checks those conditions mechanically, so the test suite can
//! certify the exact fall-back routing functions used by CLRP/CARP phase 3
//! rather than trusting the construction.
//!
//! A CDG vertex is a *virtual channel*: a `(link, vc)` pair. There is an
//! edge `(c1 → c2)` iff some packet can hold `c1` while requesting `c2`,
//! i.e. iff for some destination the routing function can route a packet
//! into `c1` at one node and offer `c2` at the next.

use std::collections::HashSet;

use crate::routing::WormholeRouting;
use crate::topo::{LinkId, Topology};

/// A CDG vertex: one virtual channel of one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelVertex {
    /// The physical link.
    pub link: LinkId,
    /// The virtual channel index on that link.
    pub vc: u8,
}

/// Which condition a [`CdgReport`] certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Dally–Seitz: the full CDG of a deterministic function is acyclic.
    DirectAcyclic,
    /// Duato: the escape-subfunction CDG is acyclic *and* every candidate
    /// set contains at least one escape channel.
    DuatoEscape,
}

/// Result of a deadlock-freedom check.
#[derive(Debug, Clone)]
pub struct CdgReport {
    /// Which condition was checked.
    pub mode: CheckMode,
    /// Number of channel vertices with at least one incident edge.
    pub vertices: usize,
    /// Number of distinct dependency edges.
    pub edges: usize,
    /// A dependency cycle, if one exists (vertices in order; last depends
    /// on first).
    pub cycle: Option<Vec<ChannelVertex>>,
    /// For [`CheckMode::DuatoEscape`]: `(current, dest)` pairs whose
    /// candidate set lacked an escape channel (must be empty).
    pub missing_escape_pairs: usize,
    /// Overall verdict.
    pub deadlock_free: bool,
}

/// The channel dependency graph of a routing function on a topology.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    vcs: u8,
    /// Adjacency lists over dense vertex ids (`link.0 * vcs + vc`).
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl ChannelDependencyGraph {
    fn vertex_id(&self, v: ChannelVertex) -> u32 {
        v.link.0 * u32::from(self.vcs) + u32::from(v.vc)
    }

    fn vertex_of(&self, id: u32) -> ChannelVertex {
        ChannelVertex {
            link: LinkId(id / u32::from(self.vcs)),
            vc: (id % u32::from(self.vcs)) as u8,
        }
    }

    /// Builds the CDG using the full candidate sets of `routing`.
    #[must_use]
    pub fn build(topo: &Topology, routing: &dyn WormholeRouting) -> Self {
        Self::build_with(topo, routing, false)
    }

    /// Builds the CDG of the escape subfunction only.
    #[must_use]
    pub fn build_escape(topo: &Topology, routing: &dyn WormholeRouting) -> Self {
        Self::build_with(topo, routing, true)
    }

    fn build_with(topo: &Topology, routing: &dyn WormholeRouting, escape_only: bool) -> Self {
        let vcs = routing.vcs_per_link();
        let nverts = topo.num_link_slots() * vcs as usize;
        let mut graph = Self {
            vcs,
            adj: vec![Vec::new(); nverts],
            edges: 0,
        };
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut cands_prev = Vec::new();
        let mut cands_cur = Vec::new();

        let route = |from, to, out: &mut Vec<_>| {
            out.clear();
            if escape_only {
                routing.escape_route(topo, from, to, out);
            } else {
                routing.route(topo, from, to, out);
            }
        };

        for dest in topo.nodes() {
            for prev in topo.nodes() {
                if prev == dest {
                    continue;
                }
                route(prev, dest, &mut cands_prev);
                for &c1 in cands_prev.iter() {
                    let Some(current) = topo.neighbor(prev, c1.port) else {
                        continue;
                    };
                    if current == dest {
                        continue; // delivered: no further dependency
                    }
                    let in_v = graph.vertex_id(ChannelVertex {
                        link: topo.link_id(prev, c1.port),
                        vc: c1.vc,
                    });
                    route(current, dest, &mut cands_cur);
                    for &c2 in cands_cur.iter() {
                        let out_v = graph.vertex_id(ChannelVertex {
                            link: topo.link_id(current, c2.port),
                            vc: c2.vc,
                        });
                        if seen.insert((in_v, out_v)) {
                            graph.adj[in_v as usize].push(out_v);
                            graph.edges += 1;
                        }
                    }
                }
            }
        }
        graph
    }

    /// Number of distinct dependency edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Number of vertices with at least one incident edge.
    #[must_use]
    pub fn num_active_vertices(&self) -> usize {
        let mut active = vec![false; self.adj.len()];
        for (v, outs) in self.adj.iter().enumerate() {
            if !outs.is_empty() {
                active[v] = true;
            }
            for &o in outs {
                active[o as usize] = true;
            }
        }
        active.iter().filter(|&&a| a).count()
    }

    /// Finds a dependency cycle, if any, via iterative three-colour DFS.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<ChannelVertex>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.adj.len();
        let mut color = vec![Color::White; n];
        let mut parent: Vec<u32> = vec![u32::MAX; n];

        for start in 0..n as u32 {
            if color[start as usize] != Color::White {
                continue;
            }
            // stack of (vertex, next-edge-index)
            let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
            color[start as usize] = Color::Gray;
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                if *idx < self.adj[v as usize].len() {
                    let w = self.adj[v as usize][*idx];
                    *idx += 1;
                    match color[w as usize] {
                        Color::White => {
                            color[w as usize] = Color::Gray;
                            parent[w as usize] = v;
                            stack.push((w, 0));
                        }
                        Color::Gray => {
                            // Found a back edge v -> w: reconstruct cycle.
                            let mut cycle = vec![self.vertex_of(v)];
                            let mut cur = v;
                            while cur != w {
                                cur = parent[cur as usize];
                                cycle.push(self.vertex_of(cur));
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[v as usize] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Checks the appropriate deadlock-freedom condition for `routing` over
/// `topo`: Dally–Seitz for deterministic functions, Duato's escape
/// condition otherwise.
#[must_use]
pub fn check_deadlock_freedom(topo: &Topology, routing: &dyn WormholeRouting) -> CdgReport {
    if routing.is_deterministic() {
        let g = ChannelDependencyGraph::build(topo, routing);
        let cycle = g.find_cycle();
        CdgReport {
            mode: CheckMode::DirectAcyclic,
            vertices: g.num_active_vertices(),
            edges: g.num_edges(),
            deadlock_free: cycle.is_none(),
            cycle,
            missing_escape_pairs: 0,
        }
    } else {
        // Duato condition part 1: escape CDG acyclic.
        let g = ChannelDependencyGraph::build_escape(topo, routing);
        let cycle = g.find_cycle();
        // Part 2: every candidate set contains an escape candidate.
        let mut missing = 0usize;
        let mut full = Vec::new();
        let mut esc = Vec::new();
        for dest in topo.nodes() {
            for cur in topo.nodes() {
                if cur == dest {
                    continue;
                }
                full.clear();
                esc.clear();
                routing.route(topo, cur, dest, &mut full);
                routing.escape_route(topo, cur, dest, &mut esc);
                if esc.is_empty() || !esc.iter().all(|e| full.contains(e)) {
                    missing += 1;
                }
            }
        }
        CdgReport {
            mode: CheckMode::DuatoEscape,
            vertices: g.num_active_vertices(),
            edges: g.num_edges(),
            deadlock_free: cycle.is_none() && missing == 0,
            cycle,
            missing_escape_pairs: missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Candidate, DorMesh, DorTorus, DuatoAdaptive, EscapeFn};
    use crate::topo::{NodeId, Topology};

    #[test]
    fn dor_mesh_is_acyclic() {
        for dims in [&[4u16, 4][..], &[8, 8][..], &[4, 4, 4][..]] {
            let t = Topology::mesh(dims);
            let rep = check_deadlock_freedom(&t, &DorMesh::new(2));
            assert!(rep.deadlock_free, "mesh DOR must be deadlock-free: {rep:?}");
            assert!(rep.edges > 0);
        }
    }

    #[test]
    fn hypercube_ecube_is_acyclic() {
        let t = Topology::hypercube(4);
        let rep = check_deadlock_freedom(&t, &DorMesh::new(1));
        assert!(rep.deadlock_free);
    }

    #[test]
    fn dateline_torus_dor_is_acyclic() {
        for dims in [&[4u16, 4][..], &[5, 5][..], &[8, 8][..]] {
            let t = Topology::torus(dims);
            let rep = check_deadlock_freedom(&t, &DorTorus::new(1));
            assert!(
                rep.deadlock_free,
                "dateline torus DOR must be deadlock-free on {dims:?}: cycle={:?}",
                rep.cycle
            );
        }
    }

    #[test]
    fn naive_torus_dor_cycle_is_detected() {
        let t = Topology::torus(&[4, 4]);
        let rep = check_deadlock_freedom(&t, &crate::routing::NaiveTorusDor::new(1));
        assert!(!rep.deadlock_free, "single-class torus DOR must cycle");
        let cycle = rep.cycle.expect("a concrete cycle must be reported");
        assert!(cycle.len() >= 2);
        // The reported cycle must be a real cycle: consecutive vertices
        // connected head-to-tail through the topology.
        for w in cycle.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert_eq!(
                t.link_dest(a.link),
                t.link_endpoints(b.link).0,
                "cycle edges must chain through nodes"
            );
        }
    }

    #[test]
    fn duato_adaptive_mesh_passes_escape_condition() {
        let t = Topology::mesh(&[6, 6]);
        let r = DuatoAdaptive::new(EscapeFn::Mesh, 2);
        let rep = check_deadlock_freedom(&t, &r);
        assert_eq!(rep.mode, CheckMode::DuatoEscape);
        assert!(rep.deadlock_free, "{rep:?}");
        assert_eq!(rep.missing_escape_pairs, 0);
    }

    #[test]
    fn duato_adaptive_torus_passes_escape_condition() {
        let t = Topology::torus(&[5, 5]);
        let r = DuatoAdaptive::new(EscapeFn::Torus, 1);
        let rep = check_deadlock_freedom(&t, &r);
        assert!(rep.deadlock_free, "{rep:?}");
    }

    /// Adaptive function whose escape set is NOT contained in its
    /// candidates for some pairs — violates the Duato condition and must
    /// be flagged.
    struct BrokenAdaptive;

    impl WormholeRouting for BrokenAdaptive {
        fn vcs_per_link(&self) -> u8 {
            2
        }
        fn route(&self, topo: &Topology, current: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
            // Adaptive channels only — never offers the escape channel.
            for port in topo.min_ports(current, dest) {
                out.push(Candidate { port, vc: 1 });
            }
        }
        fn escape_route(
            &self,
            topo: &Topology,
            current: NodeId,
            dest: NodeId,
            out: &mut Vec<Candidate>,
        ) {
            DorMesh::new(1).route(topo, current, dest, out);
        }
        fn is_deterministic(&self) -> bool {
            false
        }
        fn name(&self) -> &'static str {
            "broken-adaptive"
        }
    }

    #[test]
    fn missing_escape_channels_are_flagged() {
        let t = Topology::mesh(&[4, 4]);
        let rep = check_deadlock_freedom(&t, &BrokenAdaptive);
        assert!(!rep.deadlock_free);
        assert!(rep.missing_escape_pairs > 0);
    }

    #[test]
    fn cdg_edge_counts_are_sane() {
        let t = Topology::mesh(&[4, 4]);
        let g = ChannelDependencyGraph::build(&t, &DorMesh::new(1));
        // Each dependency chains two adjacent links; with 48 unidirectional
        // links there must be edges but not more than links^2.
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() < 48 * 48);
        assert!(g.num_active_vertices() <= 48);
    }
}
