//! Plain-text result tables (what the paper would have printed).

use wavesim_json::Value;

/// One experiment's output: a titled table of string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"E3"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table as a JSON value (keys in declaration order, so the
    /// serialized form is deterministic).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("headers", self.headers.clone().into()),
            (
                "rows",
                Value::Arr(self.rows.iter().map(|r| r.clone().into()).collect()),
            ),
        ])
    }
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["100".into(), "2000000".into()]);
        let r = t.render();
        assert!(r.contains("E0: demo"));
        assert!(r.contains("bbbb"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        // Data rows share the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("E0", "demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_form_is_deterministic() {
        let mut t = Table::new("E4", "demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let v = t.to_json();
        assert_eq!(v["id"], "E4");
        assert_eq!(v["rows"].as_array().unwrap().len(), 1);
        assert_eq!(t.to_json().pretty(), v.pretty());
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(pct(0.256), "25.6%");
    }
}
