//! # wavesim-bench — the experiment harness
//!
//! Deliverable (d): code that regenerates every evaluation result of the
//! paper. The IPPS'97 paper contains no measurement tables (its five
//! figures are architecture diagrams, reproduced structurally in the
//! library crates and asserted by unit tests); its quantitative content is
//! Theorems 1–4 plus performance claims carried from the companion
//! ICPP'96 study. EXPERIMENTS.md maps each claim to one experiment here:
//!
//! | id  | claim |
//! |-----|-------|
//! | E1  | Theorems 1–2: CLRP/CARP deadlock freedom under saturation |
//! | E2  | Theorems 3–4: livelock freedom, bounded probe work |
//! | E3  | ≥3× latency/throughput for long messages without reuse |
//! | E4  | short messages profit only through circuit reuse |
//! | E5  | CARP ≥ CLRP ≥ wormhole under temporal locality |
//! | E6  | replacement algorithm comparison (Replace field) |
//! | E7  | misrouting maximises setup probability (MB-m) |
//! | E8  | probe resilience to static faults |
//! | E9  | architecture sweep: k switches, clock ratio, w VCs |
//! | E10 | CLRP phase simplifications (§3.1 variants) |
//! | E11 | the saturation curve: latency & accepted vs offered load |
//! | E12 | ablations: switch staggering, window size, buffer sizing |
//! | E13 | closed-loop DSM request/reply round trips |
//! | E14 | dynamic lane faults: fail/repair churn under load |
//! | E15 | dependency-gated collective replay under CLRP / CARP / MB-1 |
//!
//! Every experiment is a pure function from a [`Scale`] to a [`Table`];
//! the `wavesim` CLI prints full-size runs, the Criterion benches run
//! reduced scales so `cargo bench` stays tractable.

#![warn(missing_docs)]

pub mod experiments;
pub mod livestate;
pub mod metrics;
pub mod runner;
pub mod serve;
pub mod table;
pub mod timeseries;
pub mod tracecap;
pub mod watchdog;

pub use runner::{
    apply_fault_schedule, drive, run_carp_trace, run_dep_trace, run_open_loop, run_request_reply,
    run_scripted, run_service, Drained, Driver, ParallelSweep, ReqRepResult, RunResult, RunSpec,
    ServiceResult,
};
pub use table::Table;

/// Experiment sizing: `small` keeps Criterion benches and CI fast;
/// `paper` is the full-size run the CLI uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Side length of the (square 2-D) network.
    pub side: u16,
    /// Measurement window in cycles.
    pub measure: u64,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Points per parameter sweep (sweeps truncate to this many values).
    pub sweep_points: usize,
}

impl Scale {
    /// Reduced scale for benches and CI.
    #[must_use]
    pub fn small() -> Self {
        Self {
            side: 4,
            measure: 4_000,
            warmup: 1_000,
            sweep_points: 3,
        }
    }

    /// Full scale for CLI runs (8×8, the era's standard evaluation size).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            side: 8,
            measure: 30_000,
            warmup: 5_000,
            sweep_points: usize::MAX,
        }
    }

    /// Truncates a sweep to this scale's point budget (keeps endpoints
    /// when it must drop middles).
    #[must_use]
    pub fn sweep<T: Copy>(&self, full: &[T]) -> Vec<T> {
        if full.len() <= self.sweep_points {
            return full.to_vec();
        }
        let n = self.sweep_points.max(2);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let idx = i * (full.len() - 1) / (n - 1);
            out.push(full[idx]);
        }
        out.dedup_by(|a, b| std::ptr::eq(a, b)); // no-op for Copy; keep len
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_truncation_keeps_endpoints() {
        let s = Scale {
            sweep_points: 3,
            ..Scale::small()
        };
        let full = [1, 2, 3, 4, 5, 6, 7];
        let got = s.sweep(&full);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], 1);
        assert_eq!(*got.last().unwrap(), 7);
    }

    #[test]
    fn sweep_passthrough_when_small() {
        let s = Scale::paper();
        assert_eq!(s.sweep(&[1, 2, 3]), vec![1, 2, 3]);
    }
}
