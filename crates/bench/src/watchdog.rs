//! Progress-SLO watchdogs for the measurement loops.
//!
//! Like [`crate::tracecap`] and [`crate::timeseries`], the watchdog is a
//! thread-local side channel observed at the drive loop's existing
//! 64-cycle monitor point, so an unarmed run pays nothing and an armed
//! run's schedule is untouched (the watchdog only reads, annotates the
//! trace, and — when configured — ends the run).
//!
//! Four rules, each optional:
//!
//! 1. **Stall** — no message delivered for `stall_cycles` cycles.
//! 2. **Retry storm** — more than `retry_limit` post-fault establishment
//!    retries inside one [`RETRY_WINDOW`]-cycle window.
//! 3. **Shard imbalance** — the slowest shard's wall-clock share exceeds
//!    `imbalance` times the mean (only meaningful with `--shards > 1`;
//!    wall time is nondeterministic, so this rule never arms by default).
//! 4. **Wait cycle** — the wormhole fabric has made no progress for
//!    [`DEADLOCK_AGE`] cycles *and* [`find_wait_cycle`] finds a circular
//!    wait in its wait-for graph.
//!
//! A trip stamps a [`TraceEvent::WatchdogTrip`] into the trace stream (if
//! one is armed), flushes a flight-recorder post-mortem bundle to the
//! configured path, and — with `abort` set — ends the run as a stall so
//! `RunResult::clean()` is false and the CLI exits nonzero.

use std::cell::RefCell;
use std::path::PathBuf;

use wavesim_core::WaveNetwork;
use wavesim_sim::Cycle;
use wavesim_trace::postmortem::{self, StallContext};
use wavesim_trace::TraceEvent;
use wavesim_verify::deadlock::find_wait_cycle;

/// Window over which rule 2 counts establishment retries.
pub const RETRY_WINDOW: u64 = 4096;

/// Fabric no-progress age (cycles) that triggers rule 4's wait-cycle
/// search. Kept well under the drive loop's stall threshold so the
/// watchdog diagnoses a deadlock before the run gives up.
pub const DEADLOCK_AGE: u64 = 2048;

thread_local! {
    /// Rules for runs on this thread; `None` means unwatched.
    static PLAN: RefCell<Option<WatchdogConfig>> = const { RefCell::new(None) };
    /// The live state of the run currently driving on this thread.
    static LIVE: RefCell<Option<State>> = const { RefCell::new(None) };
    /// Finished runs' reports, in run order.
    static REPORTS: RefCell<Vec<WatchdogReport>> = const { RefCell::new(Vec::new()) };
}

/// Which progress-SLO rules to arm, and what to do on a trip.
#[derive(Debug, Clone, Default)]
pub struct WatchdogConfig {
    /// Rule 1: trip when no message is delivered for this many cycles.
    pub stall_cycles: Option<u64>,
    /// Rule 2: trip when more than this many establishment retries land
    /// inside one [`RETRY_WINDOW`].
    pub retry_limit: Option<u64>,
    /// Rule 3: trip when the slowest shard's wall time exceeds this
    /// multiple of the mean (e.g. `2.0` = one shard doing double work).
    pub imbalance: Option<f64>,
    /// Rule 4: search the fabric's wait-for graph for a circular wait
    /// once progress stops for [`DEADLOCK_AGE`] cycles.
    pub deadlock: bool,
    /// End the run on any trip (reported as a stall, so the run is not
    /// `clean` and the CLI exits nonzero).
    pub abort: bool,
    /// Flush a flight-recorder post-mortem bundle here on any trip.
    pub post_mortem: Option<PathBuf>,
}

impl WatchdogConfig {
    /// True when at least one rule is armed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.stall_cycles.is_some()
            || self.retry_limit.is_some()
            || self.imbalance.is_some()
            || self.deadlock
    }
}

/// One rule firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trip {
    /// Rule number (1 = stall, 2 = retry storm, 3 = imbalance, 4 = wait
    /// cycle), matching [`TraceEvent::WatchdogTrip`].
    pub rule: u8,
    /// Cycle at which the rule fired.
    pub at: Cycle,
    /// Observed value (stall age, retry count, imbalance percent, wait
    /// cycle length).
    pub value: u64,
    /// The configured limit the value crossed.
    pub limit: u64,
}

/// One run's watchdog outcome.
#[derive(Debug, Clone, Default)]
pub struct WatchdogReport {
    /// Every rule firing, in trip order.
    pub trips: Vec<Trip>,
    /// True when a trip ended the run.
    pub aborted: bool,
    /// Where the post-mortem bundle was written, if any trip flushed one.
    pub post_mortem: Option<PathBuf>,
}

struct State {
    cfg: WatchdogConfig,
    last_delivered: u64,
    last_delivered_at: Cycle,
    stall_tripped: bool,
    retry_mark: u64,
    retry_mark_at: Cycle,
    imbalance_tripped: bool,
    deadlock_tripped: bool,
    report: WatchdogReport,
}

/// Arms the current thread: every subsequent [`crate::drive`] call is
/// watched under `cfg`, and a [`WatchdogReport`] per run is retrievable
/// via [`take_reports`].
pub fn arm(cfg: WatchdogConfig) {
    PLAN.set(Some(cfg));
}

/// Disarms the current thread; finished reports stay retrievable.
pub fn disarm() {
    PLAN.set(None);
}

/// True when [`arm`] is in effect on this thread.
#[must_use]
pub fn armed() -> bool {
    PLAN.with_borrow(Option::is_some)
}

/// Takes (and clears) the reports of runs watched on this thread.
#[must_use]
pub fn take_reports() -> Vec<WatchdogReport> {
    REPORTS.take()
}

/// Starts watching a run if this thread is armed. Returns whether it did.
pub(crate) fn install() -> bool {
    let Some(cfg) = PLAN.with_borrow(Clone::clone) else {
        return false;
    };
    LIVE.set(Some(State {
        cfg,
        last_delivered: 0,
        last_delivered_at: 0,
        stall_tripped: false,
        retry_mark: 0,
        retry_mark_at: 0,
        imbalance_tripped: false,
        deadlock_tripped: false,
        report: WatchdogReport::default(),
    }));
    true
}

/// Parks the finished run's report for [`take_reports`].
pub(crate) fn finish() {
    LIVE.with_borrow_mut(|live| {
        if let Some(s) = live.take() {
            REPORTS.with_borrow_mut(|r| r.push(s.report));
        }
    });
}

fn trip(s: &mut State, net: &mut WaveNetwork, now: Cycle, rule: u8, value: u64, limit: u64) {
    net.trace_note(now, TraceEvent::WatchdogTrip { rule, value, limit });
    s.report.trips.push(Trip {
        rule,
        at: now,
        value,
        limit,
    });
    if let Some(path) = s.cfg.post_mortem.clone() {
        flush_post_mortem(s, net, now, &path);
    }
    if s.cfg.abort {
        s.report.aborted = true;
    }
}

/// Writes the flight-recorder tail plus the fabric's wait-for graph to
/// `path` (overwriting — the last trip's view wins). Failures are
/// reported on stderr, never propagated: a watchdog must not take down
/// the run it watches.
fn flush_post_mortem(s: &mut State, net: &mut WaveNetwork, now: Cycle, path: &std::path::Path) {
    let (records, dropped, total) = match net.trace_sink() {
        Some(sink) => (sink.snapshot(), sink.dropped(), sink.total()),
        None => (Vec::new(), 0, 0),
    };
    let fabric = net.fabric();
    let edges = fabric.wait_edges();
    let cycle = find_wait_cycle(&edges);
    let ctx = StallContext {
        edges: &edges,
        cycle: cycle.as_deref(),
        now,
        stall_age: fabric.progress_age(now),
        in_flight: fabric.in_flight_flits(),
    };
    let bundle = postmortem::bundle(&records, dropped, total, &ctx);
    match std::fs::write(path, bundle.pretty()) {
        Ok(()) => s.report.post_mortem = Some(path.to_path_buf()),
        Err(e) => eprintln!(
            "note: watchdog post-mortem write failed for {}: {e}",
            path.display()
        ),
    }
}

/// The drive loop's 64-cycle observation hook. Returns `true` when a
/// tripped rule (with `abort` set) should end the run.
pub(crate) fn observe(now: Cycle, net: &mut WaveNetwork) -> bool {
    LIVE.with_borrow_mut(|live| {
        let Some(s) = live.as_mut() else {
            return false;
        };
        let stats = net.stats();
        let delivered = stats.msgs_circuit + stats.msgs_wormhole;
        if delivered > s.last_delivered {
            s.last_delivered = delivered;
            s.last_delivered_at = now;
            s.stall_tripped = false;
            s.deadlock_tripped = false;
        } else if let Some(limit) = s.cfg.stall_cycles {
            let age = now - s.last_delivered_at;
            if age >= limit && !s.stall_tripped {
                s.stall_tripped = true;
                trip(s, net, now, 1, age, limit);
            }
        }
        if let Some(limit) = s.cfg.retry_limit {
            if now - s.retry_mark_at >= RETRY_WINDOW {
                let burst = stats.establish_retries - s.retry_mark;
                s.retry_mark = stats.establish_retries;
                s.retry_mark_at = now;
                if burst > limit {
                    trip(s, net, now, 2, burst, limit);
                }
            }
        }
        if let Some(ratio) = s.cfg.imbalance {
            if !s.imbalance_tripped {
                let walls = net.fabric().shard_wall_ns();
                let total: u64 = walls.iter().sum();
                // Sub-millisecond totals are all noise; wait for signal.
                if walls.len() > 1 && total >= 1_000_000 {
                    let mean = total as f64 / walls.len() as f64;
                    let max = walls.iter().copied().max().unwrap_or(0) as f64;
                    if max > ratio * mean {
                        s.imbalance_tripped = true;
                        let pct = (max / mean * 100.0) as u64;
                        trip(s, net, now, 3, pct, (ratio * 100.0) as u64);
                    }
                }
            }
        }
        if s.cfg.deadlock && !s.deadlock_tripped {
            let fabric = net.fabric();
            if fabric.progress_age(now) >= DEADLOCK_AGE && fabric.in_flight_flits() > 0 {
                let edges = fabric.wait_edges();
                if let Some(cycle) = find_wait_cycle(&edges) {
                    s.deadlock_tripped = true;
                    trip(s, net, now, 4, cycle.len() as u64, 0);
                }
            }
        }
        s.report.aborted
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_scripted, RunSpec};
    use wavesim_core::{WaveConfig, WaveNetwork};
    use wavesim_network::Message;
    use wavesim_topology::{NodeId, Topology};

    /// One long corner-to-corner wormhole message: 512 flits deliver well
    /// past cycle 500, so a 16-cycle stall SLO must trip at the first
    /// 64-cycle observation, flush a post-mortem, and (with abort) end
    /// the run.
    fn one_long_message_run(cfg: WatchdogConfig) -> (crate::RunResult, WatchdogReport) {
        let mut net = WaveNetwork::new(
            Topology::mesh(&[4, 4]),
            WaveConfig {
                protocol: wavesim_core::ProtocolKind::WormholeOnly,
                ..WaveConfig::default()
            },
        );
        let script = [(0u64, Message::new(1, NodeId(0), NodeId(15), 512, 0))];
        arm(cfg);
        crate::tracecap::arm_flight_recorder(1 << 12);
        let r = run_scripted(&mut net, &script, RunSpec::standard(0, 100));
        disarm();
        crate::tracecap::disarm_flight_recorder();
        let mut reports = take_reports();
        assert_eq!(reports.len(), 1);
        (r, reports.pop().unwrap())
    }

    #[test]
    fn stall_rule_trips_and_aborts_with_post_mortem() {
        let path =
            std::env::temp_dir().join(format!("wavesim_watchdog_pm_{}.json", std::process::id()));
        let (r, report) = one_long_message_run(WatchdogConfig {
            stall_cycles: Some(16),
            abort: true,
            post_mortem: Some(path.clone()),
            ..WatchdogConfig::default()
        });
        assert!(report.aborted, "{report:?}");
        assert_eq!(report.trips[0].rule, 1);
        assert!(report.trips[0].value >= 16);
        assert!(r.stalled, "abort must surface as a stall");
        assert!(!r.clean());
        // The post-mortem bundle landed on disk and parses.
        let text = std::fs::read_to_string(&path).expect("post-mortem written");
        std::fs::remove_file(&path).ok();
        let doc = wavesim_json::Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("kind").and_then(wavesim_json::Value::as_str),
            Some("wavesim-postmortem")
        );
        assert!(doc.get("stall_age").is_some(), "bundle carries stall age");
        assert!(
            doc.get("wait_for").is_some(),
            "bundle carries wait-for state"
        );
        // The trip is stamped into the captured trace stream.
        let traces = crate::tracecap::take_captured();
        assert!(traces[0]
            .records
            .iter()
            .any(|rec| rec.ev.kind() == "watchdog_trip"));
    }

    #[test]
    fn unarmed_and_untripped_runs_are_untouched() {
        // Unarmed: no report.
        let mut net = WaveNetwork::new(
            Topology::mesh(&[4, 4]),
            WaveConfig {
                protocol: wavesim_core::ProtocolKind::WormholeOnly,
                ..WaveConfig::default()
            },
        );
        let script = [(0u64, Message::new(1, NodeId(0), NodeId(15), 512, 0))];
        let baseline = run_scripted(&mut net, &script, RunSpec::standard(0, 100));
        assert!(take_reports().is_empty());
        // Armed with a generous SLO: no trips, and the run result is
        // byte-identical to the unwatched baseline.
        let (r, report) = one_long_message_run(WatchdogConfig {
            stall_cycles: Some(1_000_000),
            deadlock: true,
            abort: true,
            ..WatchdogConfig::default()
        });
        assert!(report.trips.is_empty(), "{report:?}");
        assert!(!report.aborted);
        assert!(r.clean(), "{r:?}");
        assert_eq!(format!("{baseline:?}"), format!("{r:?}"));
    }

    #[test]
    fn trip_without_abort_lets_the_run_finish() {
        let (r, report) = one_long_message_run(WatchdogConfig {
            stall_cycles: Some(16),
            ..WatchdogConfig::default()
        });
        assert!(!report.trips.is_empty());
        assert!(!report.aborted);
        assert!(r.clean(), "a non-aborting trip only annotates: {r:?}");
    }
}
