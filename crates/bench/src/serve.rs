//! A dependency-free HTTP endpoint serving the live-status board.
//!
//! `wavesim --serve-metrics <addr>` binds a [`TcpListener`] and answers
//! two routes from [`crate::livestate`]:
//!
//! * `GET /metrics` — the Prometheus exposition-format page
//!   ([`wavesim_trace::metrics::MetricsPage`]);
//! * `GET /status` — a JSON status document (cycle, in-flight, cache hit
//!   rate, per-shard wall and imbalance, progress rate).
//!
//! The server is strictly read-only: it clones board snapshots and never
//! touches the simulation, so serving cannot perturb a run's schedule or
//! its stdout. One request per connection (HTTP/1.0, `Connection:
//! close`), handled serially on one detached thread — a scrape target,
//! not a web server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use wavesim_json::Value;
use wavesim_trace::metrics::MetricsPage;

use crate::livestate::{self, LiveStatus};

/// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free one) and
/// spawns the serving thread. Returns the bound address. The thread runs
/// until the process exits.
///
/// # Errors
/// Fails when the address cannot be bound or the thread cannot spawn.
pub fn serve(addr: &str) -> Result<SocketAddr, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    std::thread::Builder::new()
        .name("wavesim-metrics".into())
        .spawn(move || {
            for mut stream in listener.incoming().flatten() {
                let _ = handle(&mut stream);
            }
        })
        .map_err(|e| format!("spawn metrics thread: {e}"))?;
    Ok(local)
}

fn handle(s: &mut TcpStream) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Read until the header terminator (or EOF, or a full buffer): the
    // request line may arrive split across writes.
    let mut buf = [0u8; 2048];
    let mut got = 0;
    while got < buf.len() {
        let n = s.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
        if buf[..got].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let req = String::from_utf8_lossy(&buf[..got]);
    let path = req.split_whitespace().nth(1).unwrap_or("/");
    let (code, reason, ctype, body) = match path {
        "/metrics" => match livestate::snapshot() {
            Some(st) => (
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_text(&st),
            ),
            None => (503, "Service Unavailable", "text/plain", none_body()),
        },
        "/status" | "/status.json" => match livestate::snapshot() {
            Some(st) => (
                200,
                "OK",
                "application/json",
                format!("{}\n", status_json(&st).pretty()),
            ),
            None => (503, "Service Unavailable", "text/plain", none_body()),
        },
        "/" => (
            200,
            "OK",
            "text/plain",
            "wavesim live observability: GET /metrics | GET /status\n".into(),
        ),
        _ => (404, "Not Found", "text/plain", "not found\n".into()),
    };
    write!(
        s,
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    s.write_all(body.as_bytes())?;
    s.flush()
}

fn none_body() -> String {
    "no run is live (the board is disarmed)\n".into()
}

/// Renders the Prometheus page for one status snapshot.
#[must_use]
pub fn metrics_text(s: &LiveStatus) -> String {
    let mut page = MetricsPage::new();
    page.comment(&format!("live run: {}", s.run));
    page.gauge_labeled(
        "wavesim_live_run_info",
        "Live-run identity (always 1; the label carries the configuration)",
        &[("run", s.run.clone())],
        1.0,
    );
    page.gauge_f64(
        "wavesim_live_cycle",
        "Current simulated cycle",
        s.cycle as f64,
    );
    page.counter("wavesim_live_msgs_sent", "Messages submitted", s.sent);
    page.counter(
        "wavesim_live_msgs_delivered",
        "Messages delivered",
        s.delivered,
    );
    page.gauge_f64(
        "wavesim_live_in_flight_msgs",
        "Messages accepted but not yet delivered",
        s.in_flight_msgs as f64,
    );
    page.gauge_f64(
        "wavesim_live_in_flight_flits",
        "Flits currently in the wormhole fabric",
        s.in_flight_flits as f64,
    );
    page.counter(
        "wavesim_live_cache_hits",
        "Circuit-cache hits",
        s.cache_hits,
    );
    page.counter(
        "wavesim_live_cache_misses",
        "Circuit-cache misses",
        s.cache_misses,
    );
    page.gauge_f64(
        "wavesim_live_cache_hit_rate",
        "Circuit-cache hit rate so far",
        s.hit_rate(),
    );
    page.counter(
        "wavesim_live_establish_retries",
        "Post-fault establishment retries",
        s.establish_retries,
    );
    page.gauge_f64(
        "wavesim_live_active_routers",
        "Routers currently doing work",
        s.active_routers as f64,
    );
    page.gauge_f64(
        "wavesim_live_progress_age_cycles",
        "Cycles since any flit last moved",
        s.progress_age as f64,
    );
    page.gauge_f64(
        "wavesim_live_progress_rate",
        "Deliveries per kilocycle over the last rate window",
        s.progress_rate,
    );
    page.gauge_f64(
        "wavesim_live_cycles_per_second",
        "Simulated cycles per wall-clock second",
        s.cycles_per_sec,
    );
    for (i, ns) in s.shard_wall_ns.iter().enumerate() {
        page.gauge_labeled(
            "wavesim_live_shard_wall_ns",
            "Per-shard wall-clock nanoseconds stepping the fabric",
            &[("shard", i.to_string())],
            *ns as f64,
        );
    }
    page.gauge_f64(
        "wavesim_live_shard_imbalance",
        "Slowest shard's wall time over the mean (1 = balanced)",
        s.shard_imbalance(),
    );
    page.gauge_f64(
        "wavesim_live_done",
        "1 once the run finished, else 0",
        f64::from(u8::from(s.done)),
    );
    page.render()
}

/// Builds the JSON status document for one status snapshot.
#[must_use]
pub fn status_json(s: &LiveStatus) -> Value {
    Value::obj(vec![
        ("run", Value::Str(s.run.clone())),
        ("cycle", s.cycle.into()),
        ("done", Value::Bool(s.done)),
        ("sent", s.sent.into()),
        ("delivered", s.delivered.into()),
        ("in_flight_msgs", s.in_flight_msgs.into()),
        ("in_flight_flits", s.in_flight_flits.into()),
        ("cache_hits", s.cache_hits.into()),
        ("cache_misses", s.cache_misses.into()),
        ("cache_hit_rate", s.hit_rate().into()),
        ("establish_retries", s.establish_retries.into()),
        ("active_routers", s.active_routers.into()),
        ("progress_age", s.progress_age.into()),
        ("progress_rate", s.progress_rate.into()),
        ("cycles_per_sec", s.cycles_per_sec.into()),
        (
            "shard_wall_ns",
            Value::Arr(s.shard_wall_ns.iter().map(|&ns| ns.into()).collect()),
        ),
        ("shard_imbalance", s.shard_imbalance().into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LiveStatus {
        LiveStatus {
            run: "clrp mesh-4x4 k=2 w=2 seed=1".into(),
            cycle: 4096,
            sent: 100,
            delivered: 90,
            in_flight_msgs: 10,
            in_flight_flits: 64,
            cache_hits: 30,
            cache_misses: 10,
            establish_retries: 2,
            active_routers: 7,
            progress_age: 0,
            shard_wall_ns: vec![1000, 3000],
            progress_rate: 11.5,
            cycles_per_sec: 1.0e6,
            done: false,
        }
    }

    #[test]
    fn metrics_text_is_well_formed_exposition() {
        let text = metrics_text(&sample());
        assert!(text.contains("# TYPE wavesim_live_cycle gauge"));
        assert!(text.contains("wavesim_live_cycle 4096"));
        assert!(text.contains("wavesim_live_msgs_delivered 90"));
        assert!(text.contains("wavesim_live_shard_wall_ns{shard=\"1\"} 3000"));
        assert!(text.contains("wavesim_live_shard_imbalance 1.5"));
        // Every line is a comment or `name[{labels}] value` with a
        // numeric value (label values may themselves contain spaces).
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty(), "malformed line: {line:?}");
            assert!(
                value.parse::<f64>().is_ok(),
                "non-numeric sample value: {line:?}"
            );
        }
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn status_json_round_trips_and_carries_the_vitals() {
        let doc = status_json(&sample());
        let parsed = Value::parse(&doc.pretty()).expect("valid JSON");
        assert_eq!(parsed.get("cycle").and_then(Value::as_u64), Some(4096));
        assert_eq!(parsed.get("delivered").and_then(Value::as_u64), Some(90));
        assert_eq!(
            parsed.get("cache_hit_rate").and_then(Value::as_f64),
            Some(0.75)
        );
        assert_eq!(
            parsed
                .get("shard_wall_ns")
                .and_then(Value::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn server_answers_metrics_and_status_over_tcp() {
        let addr = serve("127.0.0.1:0").expect("bind");
        let get = |path: &str| {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
                .expect("send request");
            let mut out = String::new();
            c.read_to_string(&mut out).expect("read");
            out
        };
        // The board is disarmed in this process: routes answer 503, the
        // index and unknown routes answer 200/404 — proving the routing
        // and framing without racing other tests for the global board.
        let resp = get("/metrics");
        assert!(resp.starts_with("HTTP/1.0 503"), "{resp}");
        assert!(resp.contains("Content-Length:"));
        let resp = get("/status");
        assert!(resp.starts_with("HTTP/1.0 503"), "{resp}");
        let resp = get("/");
        assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
        assert!(resp.contains("/metrics"));
        let resp = get("/nope");
        assert!(resp.starts_with("HTTP/1.0 404"), "{resp}");
    }
}
