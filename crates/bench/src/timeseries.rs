//! Thread-local windowed time-series sampling for the measurement loops.
//!
//! Like [`crate::tracecap`], the sampler is a side channel: the golden
//! suite pins `RunResult`'s `Debug` output and the run schedule, so
//! sampling must observe without perturbing. A caller [`arm_sampler`]s the
//! thread; every subsequent [`crate::drive`] call then feeds a
//! [`WindowSeries`] — one observation per simulated cycle (active routers,
//! cache hit/miss deltas) plus every delivery — and the finished rows are
//! retrieved with [`take_series`]. With `progress` set, a one-line status
//! is printed to stderr as each window closes (the CLI's `--progress`).
//!
//! Worker threads spawned by [`crate::ParallelSweep`] start with unarmed
//! thread-locals, so sampling only applies to single-job runs.

use std::cell::{Cell, RefCell};

use wavesim_core::WaveNetwork;
use wavesim_sim::stats::Histogram;
use wavesim_sim::Cycle;
use wavesim_trace::timeseries::{WindowRow, WindowSeries};

thread_local! {
    /// Sampling plan for runs on this thread; `None` means unsampled.
    static PLAN: Cell<Option<SamplerPlan>> = const { Cell::new(None) };
    /// The live sampler of the run currently driving on this thread.
    static LIVE: RefCell<Option<LiveSampler>> = const { RefCell::new(None) };
    /// The last finished run's series.
    static SERIES: RefCell<Option<SampledSeries>> = const { RefCell::new(None) };
}

/// How to sample runs on this thread.
#[derive(Debug, Clone, Copy)]
struct SamplerPlan {
    window: u64,
    progress: bool,
}

/// A finished run's time series.
#[derive(Debug, Clone)]
pub struct SampledSeries {
    /// Closed windows, oldest first.
    pub rows: Vec<WindowRow>,
    /// Node count of the sampled network (throughput normalization).
    pub nodes: u64,
    /// Window width in cycles.
    pub window: u64,
}

struct LiveSampler {
    series: WindowSeries,
    last_hits: u64,
    last_misses: u64,
    cumulative: Histogram,
    cum_delivered: u64,
    printed: usize,
    progress: bool,
}

/// Arms the current thread: every subsequent [`crate::drive`] call samples
/// a time series with `window`-cycle windows, retrievable via
/// [`take_series`]. With `progress`, each closed window prints a one-line
/// status to stderr.
///
/// # Panics
/// Panics if `window` is zero.
pub fn arm_sampler(window: u64, progress: bool) {
    assert!(window > 0, "sampling window must be positive");
    PLAN.set(Some(SamplerPlan { window, progress }));
}

/// Disarms the current thread; an already-finished series stays
/// retrievable.
pub fn disarm_sampler() {
    PLAN.set(None);
}

/// True when [`arm_sampler`] is in effect on this thread.
#[must_use]
pub fn sampler_armed() -> bool {
    PLAN.get().is_some()
}

/// Takes the last finished run's series, if any.
#[must_use]
pub fn take_series() -> Option<SampledSeries> {
    SERIES.take()
}

/// Starts sampling a run if this thread is armed. Returns whether it did.
pub(crate) fn install(net: &WaveNetwork) -> bool {
    let Some(plan) = PLAN.get() else {
        return false;
    };
    let nodes = u64::from(net.topology().num_nodes());
    LIVE.set(Some(LiveSampler {
        series: WindowSeries::new(plan.window, nodes),
        last_hits: 0,
        last_misses: 0,
        cumulative: Histogram::new(),
        cum_delivered: 0,
        printed: 0,
        progress: plan.progress,
    }));
    true
}

/// Per-cycle observation hook, called by the drive loop between the
/// network tick and the driver's delivery drain.
pub(crate) fn observe(now: Cycle, net: &WaveNetwork) {
    LIVE.with_borrow_mut(|live| {
        let Some(s) = live.as_mut() else {
            return;
        };
        for d in net.pending_deliveries() {
            s.series
                .record_delivery(d.delivered_at, d.latency(), u64::from(d.msg.len_flits));
            s.cumulative.record(d.latency());
            s.cum_delivered += 1;
        }
        let stats = net.stats();
        let hits_delta = stats.cache_hits.saturating_sub(s.last_hits);
        let misses_delta = stats.cache_misses.saturating_sub(s.last_misses);
        s.last_hits = stats.cache_hits;
        s.last_misses = stats.cache_misses;
        s.series
            .observe(now, net.active_routers(), hits_delta, misses_delta);
        if s.progress {
            while s.printed < s.series.rows().len() {
                let row = &s.series.rows()[s.printed];
                s.printed += 1;
                eprintln!(
                    "[wavesim] cycle {:>9} | delivered {:>8} | p99 {:>8.1} | cache hit {:>5.1}%",
                    row.end,
                    s.cum_delivered,
                    s.cumulative.p99().unwrap_or(0.0),
                    row.hit_rate() * 100.0,
                );
            }
        }
    });
}

/// Closes the sampler at the run's end cycle and parks the series for
/// [`take_series`].
pub(crate) fn finish(end: Cycle) {
    LIVE.with_borrow_mut(|live| {
        if let Some(s) = live.take() {
            let nodes = s.series.nodes();
            let window = s.series.window();
            let rows = s.series.finish(end);
            SERIES.set(Some(SampledSeries {
                rows,
                nodes,
                window,
            }));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_open_loop, RunSpec};
    use wavesim_core::{WaveConfig, WaveNetwork};
    use wavesim_topology::Topology;
    use wavesim_workloads::{LengthDist, TrafficConfig, TrafficSource};

    fn run(sampled: bool) -> (crate::RunResult, Option<SampledSeries>) {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.1,
                len: LengthDist::Fixed(32),
                ..TrafficConfig::default()
            },
        );
        if sampled {
            arm_sampler(200, false);
        }
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000));
        if sampled {
            disarm_sampler();
        }
        (r, take_series())
    }

    #[test]
    fn sampled_run_produces_consistent_series() {
        let (r, series) = run(true);
        assert!(r.clean(), "{r:?}");
        let series = series.expect("sampled");
        assert_eq!(series.nodes, 16);
        assert_eq!(series.window, 200);
        assert!(!series.rows.is_empty());
        // Every delivery of the run lands in exactly one window.
        let total: u64 = series.rows.iter().map(|w| w.delivered).sum();
        assert_eq!(total, r.delivered);
        // Windows tile the run without gaps.
        for pair in series.rows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(series.rows.iter().any(|w| w.active_routers > 0));
        assert!(series
            .rows
            .iter()
            .any(|w| w.cache_hits + w.cache_misses > 0));
    }

    #[test]
    fn sampling_does_not_change_the_schedule() {
        let baseline = format!("{:?}", run(false).0);
        let sampled = format!("{:?}", run(true).0);
        assert_eq!(baseline, sampled);
    }

    #[test]
    fn unarmed_thread_samples_nothing() {
        assert!(!sampler_armed());
        let (_, series) = run(false);
        assert!(series.is_none());
    }
}
