//! The process-wide live-status board behind `--serve-metrics` and
//! `--live-status`.
//!
//! Unlike the thread-local side channels ([`crate::tracecap`],
//! [`crate::timeseries`]), the board is global: the HTTP serving thread
//! ([`crate::serve`]) reads it while the simulation thread writes it.
//! It is strictly read-only with respect to the run — the drive loop
//! pushes a snapshot every 64 cycles and nothing flows back — so arming
//! it cannot perturb the schedule, and the determinism goldens hold with
//! the plane up.
//!
//! When disarmed (the default) the per-update cost is one relaxed atomic
//! load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use wavesim_core::WaveNetwork;
use wavesim_sim::Cycle;

/// Cycles between recomputations of the progress rate (and between
/// `--live-status` stderr lines).
const RATE_WINDOW: u64 = 8192;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ECHO: AtomicBool = AtomicBool::new(false);

/// A point-in-time view of the driving run, published every 64 cycles.
#[derive(Debug, Clone, Default)]
pub struct LiveStatus {
    /// Run identity: `protocol topology k w seed`.
    pub run: String,
    /// Simulated cycle of this snapshot.
    pub cycle: Cycle,
    /// Messages submitted so far.
    pub sent: u64,
    /// Messages delivered so far.
    pub delivered: u64,
    /// Messages accepted but not yet delivered.
    pub in_flight_msgs: u64,
    /// Flits currently in the wormhole fabric.
    pub in_flight_flits: u64,
    /// Circuit-cache hits so far.
    pub cache_hits: u64,
    /// Circuit-cache misses so far.
    pub cache_misses: u64,
    /// Post-fault establishment retries so far.
    pub establish_retries: u64,
    /// Routers currently doing work.
    pub active_routers: u64,
    /// Cycles since any flit last moved in the fabric.
    pub progress_age: u64,
    /// Per-shard wall-clock nanoseconds stepping the fabric.
    pub shard_wall_ns: Vec<u64>,
    /// Deliveries per kilocycle over the last [`RATE_WINDOW`].
    pub progress_rate: f64,
    /// Simulated cycles per wall-clock second since the run started.
    pub cycles_per_sec: f64,
    /// True once the run finished.
    pub done: bool,
}

impl LiveStatus {
    /// Circuit-cache hit rate so far (0 when no lookups happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Slowest shard's wall time over the mean (1.0 = balanced; 0 when
    /// unsharded or unmeasured).
    #[must_use]
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_wall_ns.iter().sum();
        if self.shard_wall_ns.len() < 2 || total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.shard_wall_ns.len() as f64;
        self.shard_wall_ns.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

struct Board {
    status: LiveStatus,
    started: Instant,
    mark_cycle: Cycle,
    mark_delivered: u64,
    echoed_at: Cycle,
}

fn board() -> &'static Mutex<Board> {
    static BOARD: OnceLock<Mutex<Board>> = OnceLock::new();
    BOARD.get_or_init(|| {
        Mutex::new(Board {
            status: LiveStatus::default(),
            started: Instant::now(),
            mark_cycle: 0,
            mark_delivered: 0,
            echoed_at: 0,
        })
    })
}

/// Arms the board process-wide. With `echo`, a one-line status is
/// printed to stderr every [`RATE_WINDOW`] cycles (the CLI's
/// `--live-status`).
pub fn arm(echo: bool) {
    ECHO.store(echo, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms the board; [`snapshot`] returns `None` again.
pub fn disarm() {
    ENABLED.store(false, Ordering::Relaxed);
    ECHO.store(false, Ordering::Relaxed);
}

/// The latest published status, if the board is armed.
#[must_use]
pub fn snapshot() -> Option<LiveStatus> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    Some(board().lock().expect("live board poisoned").status.clone())
}

/// Resets the board for a starting run (no-op when disarmed).
pub(crate) fn install(net: &WaveNetwork) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let cfg = net.config();
    let topo = net.topology();
    let run = format!(
        "{} {}-{} k={} w={} seed={}",
        format!("{:?}", cfg.protocol).to_lowercase(),
        match topo.kind() {
            wavesim_topology::TopologyKind::Mesh => "mesh",
            wavesim_topology::TopologyKind::Torus => "torus",
        },
        (0..topo.ndims())
            .map(|d| topo.radix(d).to_string())
            .collect::<Vec<_>>()
            .join("x"),
        cfg.k,
        cfg.wormhole.w,
        cfg.seed
    );
    let mut b = board().lock().expect("live board poisoned");
    b.status = LiveStatus {
        run,
        ..LiveStatus::default()
    };
    b.started = Instant::now();
    b.mark_cycle = 0;
    b.mark_delivered = 0;
    b.echoed_at = 0;
}

/// Publishes a snapshot of `net` at `now` (no-op when disarmed). Called
/// by the drive loop every 64 cycles.
pub(crate) fn update(now: Cycle, net: &WaveNetwork) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let stats = net.stats();
    let health = net.health(now);
    let mut b = board().lock().expect("live board poisoned");
    let s = &mut b.status;
    s.cycle = now;
    s.sent = stats.msgs_sent;
    s.delivered = stats.msgs_circuit + stats.msgs_wormhole;
    s.in_flight_msgs = health.outstanding_msgs;
    s.in_flight_flits = health.in_flight_flits;
    s.cache_hits = stats.cache_hits;
    s.cache_misses = stats.cache_misses;
    s.establish_retries = stats.establish_retries;
    s.active_routers = health.active_routers;
    s.progress_age = health.progress_age;
    s.shard_wall_ns = health.shard_wall_ns;
    let delivered = s.delivered;
    if now >= b.mark_cycle + RATE_WINDOW {
        let dc = (now - b.mark_cycle) as f64;
        b.status.progress_rate = (delivered.saturating_sub(b.mark_delivered)) as f64 * 1000.0 / dc;
        b.mark_cycle = now;
        b.mark_delivered = delivered;
    }
    let elapsed = b.started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        b.status.cycles_per_sec = now as f64 / elapsed;
    }
    if ECHO.load(Ordering::Relaxed) && now >= b.echoed_at + RATE_WINDOW {
        b.echoed_at = now;
        let s = &b.status;
        eprintln!(
            "[wavesim live] cycle {:>9} | delivered {:>8}/{:<8} | in-flight {:>6} | \
             cache hit {:>5.1}% | {:>7.1} msgs/kcy | {:>9.0} cy/s",
            s.cycle,
            s.delivered,
            s.sent,
            s.in_flight_msgs,
            s.hit_rate() * 100.0,
            s.progress_rate,
            s.cycles_per_sec,
        );
    }
}

/// Marks the run finished at `end` with a final snapshot (no-op when
/// disarmed).
pub(crate) fn finish(end: Cycle, net: &WaveNetwork) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    update(end, net);
    board().lock().expect("live board poisoned").status.done = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The board is process-global, so driving a run with it armed cannot
    // be exercised here without racing the other unit tests' runs; the
    // full arm-run-snapshot path is covered by the `live_plane`
    // integration suite, which owns its process.

    #[test]
    fn disarmed_board_is_silent_and_status_math_holds() {
        assert!(snapshot().is_none());
        let s = LiveStatus {
            cache_hits: 3,
            cache_misses: 1,
            shard_wall_ns: vec![100, 300],
            ..LiveStatus::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.shard_imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(LiveStatus::default().hit_rate(), 0.0);
        assert_eq!(LiveStatus::default().shard_imbalance(), 0.0);
    }
}
