//! Thread-local flight-recorder capture for the measurement loops.
//!
//! The golden-hash determinism suite pins the `Debug` output of
//! [`crate::RunResult`], so tracing output cannot ride on the result
//! struct. Instead the capture is a thread-local side channel: a caller
//! [`arm_flight_recorder`]s the thread, every subsequent [`crate::drive`]
//! call installs a fresh [`FlightRecorder`] into the network for the
//! duration of the run, and the captured [`RunTrace`]s are retrieved with
//! [`take_captured`]. Worker threads spawned by
//! [`crate::ParallelSweep`] start with unarmed thread-locals, so traced
//! sweeps must run with `jobs = 1` (the CLI enforces this).
//!
//! When a run trips the deadlock monitor, the capture additionally holds a
//! post-mortem bundle: the recorder tail plus the wormhole fabric's
//! wait-for graph (and the circular wait inside it, if one exists) at the
//! stall cycle.

use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

use wavesim_core::WaveNetwork;
use wavesim_json::Value;
use wavesim_sim::Cycle;
use wavesim_trace::postmortem::{self, StallContext};
use wavesim_trace::recorder::TeeSink;
use wavesim_trace::{ColumnarSink, FlightRecorder, JsonlSink, TraceRecord, TraceSink};
use wavesim_verify::deadlock::find_wait_cycle;

use crate::Drained;

/// Ring capacity used when only a byte stream is armed: the stream is
/// lossless on disk, so the in-memory tail only has to feed a post-mortem.
const DEFAULT_RING: usize = 1 << 16;

thread_local! {
    /// Recorder capacity for runs on this thread; `None` means untraced.
    static PLAN: Cell<Option<usize>> = const { Cell::new(None) };
    /// A pending JSONL streaming sink, consumed by the next traced run.
    static JSONL: RefCell<Option<JsonlSink<BufWriter<File>>>> = const { RefCell::new(None) };
    /// A path re-streamed (truncating) at every run start, for sweeps.
    static JSONL_PATH: RefCell<Option<PathBuf>> = const { RefCell::new(None) };
    /// A pending binary columnar sink, consumed by the next traced run.
    static BIN: RefCell<Option<ColumnarSink<BufWriter<File>>>> = const { RefCell::new(None) };
    /// Per-run binary re-arm: path plus bulk-kind sampling divisor.
    static BIN_PATH: RefCell<Option<(PathBuf, u64)>> = const { RefCell::new(None) };
    /// Traces captured on this thread, in run order.
    static CAPTURED: RefCell<Vec<RunTrace>> = const { RefCell::new(Vec::new()) };
    /// Factory producing an extra sink teed beside the capture sinks at
    /// every run start (the CLI installs the live-analytics fold here;
    /// `wavesim-bench` cannot depend on `wavesim-analyze`, so the fold is
    /// injected from above as an opaque [`TraceSink`]).
    static EXTRA: RefCell<Option<ExtraFactory>> = const { RefCell::new(None) };
}

type ExtraFactory = Box<dyn FnMut() -> Box<dyn TraceSink>>;

/// One run's flight-recorder contents plus outcome metadata.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Surviving records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records overwritten by ring wraparound.
    pub dropped: u64,
    /// Records emitted over the whole run.
    pub total: u64,
    /// Cycle at which the run ended.
    pub end: Cycle,
    /// True when the deadlock monitor tripped.
    pub stalled: bool,
    /// Post-mortem bundle; present only when the run stalled.
    pub post_mortem: Option<Value>,
    /// Error from flushing an armed JSONL stream, if one occurred.
    pub stream_error: Option<String>,
}

/// Arms the current thread: every subsequent [`crate::drive`] call records
/// into a fresh [`FlightRecorder`] with `capacity` slots and appends a
/// [`RunTrace`] retrievable via [`take_captured`].
///
/// # Panics
/// Panics if `capacity` is zero (a flight recorder needs at least one
/// slot).
pub fn arm_flight_recorder(capacity: usize) {
    assert!(capacity > 0, "a flight recorder needs at least one slot");
    PLAN.set(Some(capacity));
}

/// Disarms the current thread; already-captured traces stay retrievable.
pub fn disarm_flight_recorder() {
    PLAN.set(None);
}

/// True when [`arm_flight_recorder`] is in effect on this thread.
#[must_use]
pub fn flight_recorder_armed() -> bool {
    PLAN.get().is_some()
}

/// Takes (and clears) the traces captured on this thread so far.
#[must_use]
pub fn take_captured() -> Vec<RunTrace> {
    CAPTURED.take()
}

/// Arms a lossless JSONL stream to `path` for the *next* [`crate::drive`]
/// call on this thread (one-shot: the stream is consumed by that run and
/// flushed when it finishes). Composes with [`arm_flight_recorder`]: the
/// ring keeps the post-mortem tail while the stream captures everything.
///
/// # Errors
/// Fails if `path` cannot be created.
pub fn arm_jsonl_stream(path: &Path) -> Result<(), String> {
    let sink = JsonlSink::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    JSONL.set(Some(sink));
    Ok(())
}

/// True when a JSONL stream is armed and not yet consumed by a run.
#[must_use]
pub fn jsonl_stream_armed() -> bool {
    JSONL.with_borrow(Option::is_some) || JSONL_PATH.with_borrow(Option::is_some)
}

/// Streams *every* subsequent [`crate::drive`] call on this thread to
/// `path`, re-creating (truncating) the file at each run start — after a
/// sweep the file holds the final point, mirroring how the exported
/// flight-recorder trace keeps the last (most loaded) run. Cleared by
/// [`disarm_jsonl_stream`].
///
/// # Errors
/// Fails if `path` cannot be created.
pub fn arm_jsonl_stream_per_run(path: &Path) -> Result<(), String> {
    // Create eagerly so an unwritable path fails here, not mid-sweep.
    let mut probe = JsonlSink::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    probe
        .finish()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    JSONL_PATH.set(Some(path.to_path_buf()));
    Ok(())
}

/// Clears any armed JSONL stream, one-shot or per-run.
pub fn disarm_jsonl_stream() {
    JSONL.take();
    JSONL_PATH.set(None);
}

/// Arms a binary columnar stream to `path` for the *next*
/// [`crate::drive`] call on this thread (one-shot, like
/// [`arm_jsonl_stream`]). `sample_every` of 0 or 1 captures losslessly;
/// N > 1 keeps 1-in-N of the bulk kinds deterministically (see
/// [`wavesim_trace::stream::StreamSink::with_sampling`]).
///
/// # Errors
/// Fails if `path` cannot be created.
pub fn arm_bin_stream(path: &Path, sample_every: u64) -> Result<(), String> {
    let sink = ColumnarSink::create(path)
        .map_err(|e| format!("{}: {e}", path.display()))?
        .with_sampling(sample_every);
    BIN.set(Some(sink));
    Ok(())
}

/// Streams *every* subsequent [`crate::drive`] call on this thread to
/// `path` as binary columnar frames, re-creating (truncating) the file at
/// each run start — the binary twin of [`arm_jsonl_stream_per_run`].
/// Cleared by [`disarm_bin_stream`].
///
/// # Errors
/// Fails if `path` cannot be created.
pub fn arm_bin_stream_per_run(path: &Path, sample_every: u64) -> Result<(), String> {
    // Create eagerly so an unwritable path fails here, not mid-sweep.
    let mut probe = ColumnarSink::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    probe
        .finish()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    BIN_PATH.set(Some((path.to_path_buf(), sample_every)));
    Ok(())
}

/// True when a binary stream is armed and not yet consumed by a run.
#[must_use]
pub fn bin_stream_armed() -> bool {
    BIN.with_borrow(Option::is_some) || BIN_PATH.with_borrow(Option::is_some)
}

/// Clears any armed binary stream, one-shot or per-run.
pub fn disarm_bin_stream() {
    BIN.take();
    BIN_PATH.set(None);
}

/// Arms an extra trace sink for *every* subsequent [`crate::drive`] call
/// on this thread: `factory` is invoked at each run start and its sink is
/// teed beside the capture sinks (the flight recorder stays the
/// query-answering primary). The live-observability plane rides here —
/// the CLI arms a [`wavesim-analyze`] streaming fold without
/// `wavesim-bench` depending on that crate. Cleared by
/// [`disarm_extra_sink`].
///
/// [`wavesim-analyze`]: https://docs.rs/wavesim-analyze
pub fn arm_extra_sink(factory: impl FnMut() -> Box<dyn TraceSink> + 'static) {
    EXTRA.set(Some(Box::new(factory)));
}

/// Clears the extra-sink factory.
pub fn disarm_extra_sink() {
    EXTRA.take();
}

/// True when an extra-sink factory is armed on this thread.
#[must_use]
pub fn extra_sink_armed() -> bool {
    EXTRA.with_borrow(Option::is_some)
}

/// Installs a trace sink into `net` if this thread is armed: the flight
/// recorder, optionally teed into pending JSONL and/or binary columnar
/// streams (the recorder stays the query-answering primary through the
/// nested tees). Returns whether a sink was installed.
pub(crate) fn install(net: &mut WaveNetwork) -> bool {
    let capacity = PLAN.get();
    let jsonl = JSONL.take().or_else(|| {
        JSONL_PATH.with_borrow(|p| {
            let path = p.as_ref()?;
            match JsonlSink::create(path) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("note: JSONL re-arm failed for {}: {e}", path.display());
                    None
                }
            }
        })
    });
    let bin = BIN.take().or_else(|| {
        BIN_PATH.with_borrow(|p| {
            let (path, sample) = p.as_ref()?;
            match ColumnarSink::create(path) {
                Ok(s) => Some(s.with_sampling(*sample)),
                Err(e) => {
                    eprintln!("note: binary re-arm failed for {}: {e}", path.display());
                    None
                }
            }
        })
    });
    let extra = EXTRA.with_borrow_mut(|f| f.as_mut().map(|make| make()));
    if capacity.is_none() && jsonl.is_none() && bin.is_none() && extra.is_none() {
        return false;
    }
    let mut sink: Box<dyn TraceSink> =
        Box::new(FlightRecorder::new(capacity.unwrap_or(DEFAULT_RING)));
    if let Some(s) = jsonl {
        sink = Box::new(TeeSink::new(sink, Box::new(s)));
    }
    if let Some(s) = bin {
        sink = Box::new(TeeSink::new(sink, Box::new(s)));
    }
    if let Some(s) = extra {
        sink = Box::new(TeeSink::new(sink, s));
    }
    net.install_trace_sink(sink);
    true
}

/// Removes the recorder installed by [`install`], snapshots it, and
/// appends the [`RunTrace`] — with a post-mortem bundle when the run
/// stalled — to this thread's capture list.
pub(crate) fn finish(net: &mut WaveNetwork, outcome: Drained) {
    let Some(mut sink) = net.take_trace_sink() else {
        return;
    };
    let stream_error = sink.finish().err();
    let records = sink.snapshot();
    let dropped = sink.dropped();
    let total = sink.total();
    let post_mortem = outcome.stalled.then(|| {
        let fabric = net.fabric();
        let edges = fabric.wait_edges();
        let cycle = find_wait_cycle(&edges);
        let ctx = StallContext {
            edges: &edges,
            cycle: cycle.as_deref(),
            now: outcome.end,
            stall_age: fabric.progress_age(outcome.end),
            in_flight: fabric.in_flight_flits(),
        };
        postmortem::bundle(&records, dropped, total, &ctx)
    });
    CAPTURED.with_borrow_mut(|c| {
        c.push(RunTrace {
            records,
            dropped,
            total,
            end: outcome.end,
            stalled: outcome.stalled,
            post_mortem,
            stream_error,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_open_loop, RunSpec};
    use wavesim_core::{WaveConfig, WaveNetwork};
    use wavesim_topology::Topology;
    use wavesim_workloads::{LengthDist, TrafficConfig, TrafficSource};

    fn traced_run() -> (crate::RunResult, Vec<RunTrace>) {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.1,
                len: LengthDist::Fixed(32),
                ..TrafficConfig::default()
            },
        );
        arm_flight_recorder(1 << 16);
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000));
        disarm_flight_recorder();
        (r, take_captured())
    }

    #[test]
    fn armed_drive_captures_one_trace_per_run() {
        let (r, traces) = traced_run();
        assert!(r.clean(), "{r:?}");
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert!(!t.stalled);
        assert!(t.post_mortem.is_none());
        assert_eq!(t.end, r.end);
        assert!(t.total > 0);
        assert_eq!(t.records.len() as u64 + t.dropped, t.total);
        // Seq numbers are gap-free over the surviving tail.
        for w in t.records.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn tracing_does_not_change_the_schedule() {
        let baseline = {
            let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
            let mut src = TrafficSource::new(
                net.topology().clone(),
                TrafficConfig {
                    load: 0.1,
                    len: LengthDist::Fixed(32),
                    ..TrafficConfig::default()
                },
            );
            format!(
                "{:?}",
                run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000))
            )
        };
        let (r, _) = traced_run();
        assert_eq!(baseline, format!("{r:?}"));
    }

    #[test]
    fn jsonl_stream_tees_full_run_to_disk() {
        let path = std::env::temp_dir().join(format!(
            "wavesim_tracecap_stream_{}.jsonl",
            std::process::id()
        ));
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.1,
                len: LengthDist::Fixed(32),
                ..TrafficConfig::default()
            },
        );
        arm_flight_recorder(64); // tiny ring: the stream must still be lossless
        arm_jsonl_stream(&path).expect("create stream");
        assert!(jsonl_stream_armed());
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000));
        disarm_flight_recorder();
        assert!(!jsonl_stream_armed(), "stream is one-shot");
        let traces = take_captured();
        assert!(r.clean(), "{r:?}");
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert!(t.stream_error.is_none(), "{:?}", t.stream_error);
        assert!(t.dropped > 0, "the tiny ring must have wrapped");
        let streamed = wavesim_trace::stream::read_jsonl_file(&path).expect("parse");
        std::fs::remove_file(&path).ok();
        // The file holds every record the ring was offered, gap-free.
        assert_eq!(streamed.len() as u64, t.total);
        for w in streamed.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        // The ring tail is a suffix of the stream.
        let tail = &streamed[streamed.len() - t.records.len()..];
        assert_eq!(tail, &t.records[..]);
    }

    #[test]
    fn per_run_stream_keeps_the_last_run_of_a_sweep() {
        let path = std::env::temp_dir().join(format!(
            "wavesim_tracecap_per_run_{}.jsonl",
            std::process::id()
        ));
        arm_flight_recorder(1 << 16);
        arm_jsonl_stream_per_run(&path).expect("create stream");
        let mut last_total = 0;
        for cycles in [400u64, 900] {
            let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
            let mut src = TrafficSource::new(
                net.topology().clone(),
                TrafficConfig {
                    load: 0.1,
                    len: LengthDist::Fixed(32),
                    ..TrafficConfig::default()
                },
            );
            let r = run_open_loop(&mut net, &mut src, RunSpec::standard(100, cycles));
            assert!(r.clean(), "{r:?}");
        }
        disarm_flight_recorder();
        disarm_jsonl_stream();
        let traces = take_captured();
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!(t.stream_error.is_none(), "{:?}", t.stream_error);
            last_total = t.total;
        }
        // The file was truncated per run, so it holds exactly the last one.
        let streamed = wavesim_trace::stream::read_jsonl_file(&path).expect("parse");
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed.len() as u64, last_total);
        assert_eq!(streamed[0].seq, 0, "re-armed stream restarts at seq 0");
    }

    #[test]
    fn bin_stream_matches_jsonl_stream_exactly() {
        let pid = std::process::id();
        let jpath = std::env::temp_dir().join(format!("wavesim_tracecap_bj_{pid}.jsonl"));
        let bpath = std::env::temp_dir().join(format!("wavesim_tracecap_bj_{pid}.wstrace"));
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.1,
                len: LengthDist::Fixed(32),
                ..TrafficConfig::default()
            },
        );
        arm_jsonl_stream(&jpath).expect("create jsonl stream");
        arm_bin_stream(&bpath, 0).expect("create bin stream");
        assert!(bin_stream_armed());
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000));
        assert!(!bin_stream_armed(), "stream is one-shot");
        let traces = take_captured();
        assert!(r.clean(), "{r:?}");
        assert!(
            traces[0].stream_error.is_none(),
            "{:?}",
            traces[0].stream_error
        );
        let jsonl = wavesim_trace::stream::read_jsonl_file(&jpath).expect("parse jsonl");
        let bin = wavesim_trace::read_trace_file(&bpath).expect("decode bin");
        let jsonl_bytes = std::fs::metadata(&jpath).expect("stat").len();
        let bin_bytes = std::fs::metadata(&bpath).expect("stat").len();
        std::fs::remove_file(&jpath).ok();
        std::fs::remove_file(&bpath).ok();
        assert!(!bin.is_empty());
        assert_eq!(bin, jsonl, "both formats capture the identical stream");
        assert!(
            bin_bytes * 4 <= jsonl_bytes,
            "binary must be at most a quarter of JSONL ({bin_bytes} vs {jsonl_bytes})"
        );
    }

    #[test]
    fn unarmed_thread_captures_nothing() {
        assert!(!flight_recorder_armed());
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.05,
                len: LengthDist::Fixed(16),
                ..TrafficConfig::default()
            },
        );
        let _ = run_open_loop(&mut net, &mut src, RunSpec::standard(100, 500));
        assert!(take_captured().is_empty());
    }
}
