//! Thread-local flight-recorder capture for the measurement loops.
//!
//! The golden-hash determinism suite pins the `Debug` output of
//! [`crate::RunResult`], so tracing output cannot ride on the result
//! struct. Instead the capture is a thread-local side channel: a caller
//! [`arm_flight_recorder`]s the thread, every subsequent [`crate::drive`]
//! call installs a fresh [`FlightRecorder`] into the network for the
//! duration of the run, and the captured [`RunTrace`]s are retrieved with
//! [`take_captured`]. Worker threads spawned by
//! [`crate::ParallelSweep`] start with unarmed thread-locals, so traced
//! sweeps must run with `jobs = 1` (the CLI enforces this).
//!
//! When a run trips the deadlock monitor, the capture additionally holds a
//! post-mortem bundle: the recorder tail plus the wormhole fabric's
//! wait-for graph (and the circular wait inside it, if one exists) at the
//! stall cycle.

use std::cell::{Cell, RefCell};

use wavesim_core::WaveNetwork;
use wavesim_json::Value;
use wavesim_sim::Cycle;
use wavesim_trace::postmortem::{self, StallContext};
use wavesim_trace::{FlightRecorder, TraceRecord};
use wavesim_verify::deadlock::find_wait_cycle;

use crate::Drained;

thread_local! {
    /// Recorder capacity for runs on this thread; `None` means untraced.
    static PLAN: Cell<Option<usize>> = const { Cell::new(None) };
    /// Traces captured on this thread, in run order.
    static CAPTURED: RefCell<Vec<RunTrace>> = const { RefCell::new(Vec::new()) };
}

/// One run's flight-recorder contents plus outcome metadata.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Surviving records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records overwritten by ring wraparound.
    pub dropped: u64,
    /// Records emitted over the whole run.
    pub total: u64,
    /// Cycle at which the run ended.
    pub end: Cycle,
    /// True when the deadlock monitor tripped.
    pub stalled: bool,
    /// Post-mortem bundle; present only when the run stalled.
    pub post_mortem: Option<Value>,
}

/// Arms the current thread: every subsequent [`crate::drive`] call records
/// into a fresh [`FlightRecorder`] with `capacity` slots and appends a
/// [`RunTrace`] retrievable via [`take_captured`].
///
/// # Panics
/// Panics if `capacity` is zero (a flight recorder needs at least one
/// slot).
pub fn arm_flight_recorder(capacity: usize) {
    assert!(capacity > 0, "a flight recorder needs at least one slot");
    PLAN.set(Some(capacity));
}

/// Disarms the current thread; already-captured traces stay retrievable.
pub fn disarm_flight_recorder() {
    PLAN.set(None);
}

/// True when [`arm_flight_recorder`] is in effect on this thread.
#[must_use]
pub fn flight_recorder_armed() -> bool {
    PLAN.get().is_some()
}

/// Takes (and clears) the traces captured on this thread so far.
#[must_use]
pub fn take_captured() -> Vec<RunTrace> {
    CAPTURED.take()
}

/// Installs a flight recorder into `net` if this thread is armed.
/// Returns whether a recorder was installed.
pub(crate) fn install(net: &mut WaveNetwork) -> bool {
    let Some(capacity) = PLAN.get() else {
        return false;
    };
    net.install_trace_sink(Box::new(FlightRecorder::new(capacity)));
    true
}

/// Removes the recorder installed by [`install`], snapshots it, and
/// appends the [`RunTrace`] — with a post-mortem bundle when the run
/// stalled — to this thread's capture list.
pub(crate) fn finish(net: &mut WaveNetwork, outcome: Drained) {
    let Some(sink) = net.take_trace_sink() else {
        return;
    };
    let records = sink.snapshot();
    let dropped = sink.dropped();
    let total = sink.total();
    let post_mortem = outcome.stalled.then(|| {
        let fabric = net.fabric();
        let edges = fabric.wait_edges();
        let cycle = find_wait_cycle(&edges);
        let ctx = StallContext {
            edges: &edges,
            cycle: cycle.as_deref(),
            now: outcome.end,
            stall_age: fabric.progress_age(outcome.end),
            in_flight: fabric.in_flight_flits(),
        };
        postmortem::bundle(&records, dropped, total, &ctx)
    });
    CAPTURED.with_borrow_mut(|c| {
        c.push(RunTrace {
            records,
            dropped,
            total,
            end: outcome.end,
            stalled: outcome.stalled,
            post_mortem,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_open_loop, RunSpec};
    use wavesim_core::{WaveConfig, WaveNetwork};
    use wavesim_topology::Topology;
    use wavesim_workloads::{LengthDist, TrafficConfig, TrafficSource};

    fn traced_run() -> (crate::RunResult, Vec<RunTrace>) {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.1,
                len: LengthDist::Fixed(32),
                ..TrafficConfig::default()
            },
        );
        arm_flight_recorder(1 << 16);
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000));
        disarm_flight_recorder();
        (r, take_captured())
    }

    #[test]
    fn armed_drive_captures_one_trace_per_run() {
        let (r, traces) = traced_run();
        assert!(r.clean(), "{r:?}");
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert!(!t.stalled);
        assert!(t.post_mortem.is_none());
        assert_eq!(t.end, r.end);
        assert!(t.total > 0);
        assert_eq!(t.records.len() as u64 + t.dropped, t.total);
        // Seq numbers are gap-free over the surviving tail.
        for w in t.records.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn tracing_does_not_change_the_schedule() {
        let baseline = {
            let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
            let mut src = TrafficSource::new(
                net.topology().clone(),
                TrafficConfig {
                    load: 0.1,
                    len: LengthDist::Fixed(32),
                    ..TrafficConfig::default()
                },
            );
            format!(
                "{:?}",
                run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000))
            )
        };
        let (r, _) = traced_run();
        assert_eq!(baseline, format!("{r:?}"));
    }

    #[test]
    fn unarmed_thread_captures_nothing() {
        assert!(!flight_recorder_armed());
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let mut src = TrafficSource::new(
            net.topology().clone(),
            TrafficConfig {
                load: 0.05,
                len: LengthDist::Fixed(16),
                ..TrafficConfig::default()
            },
        );
        let _ = run_open_loop(&mut net, &mut src, RunSpec::standard(100, 500));
        assert!(take_captured().is_empty());
    }
}
