//! E3 — the headline claim: "wave switching is able to reduce latency and
//! increase throughput by a factor higher than three if messages are long
//! enough (≥ 128 flits), even if circuits are not reused" (§1/§5, from the
//! companion ICPP'96 study).
//!
//! Message-length sweep, uniform destinations with the circuit cache
//! capped at one entry so reuse is negligible — the "not reused" regime.
//! Latency is measured at a light load; accepted throughput at an offered
//! load far beyond wormhole saturation. The expected *shape*: both ratios
//! grow with message length and cross ~1 well before 128 flits, reaching
//! ≥ 2–4× at 128+.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::table::f2;
use crate::{Scale, Table};

/// Runs E3.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3",
        "latency & throughput vs message length, no circuit reuse",
        &[
            "len (flits)",
            "lat ratio (idle)",
            "lat ratio (loaded)",
            "WH thpt",
            "wave thpt",
            "thpt ratio",
        ],
    );
    let lens = scale.sweep(&[8u32, 16, 32, 64, 128, 256, 512]);
    let spec = RunSpec::standard(scale.warmup, scale.measure);

    for &len in &lens {
        let lat = |protocol: ProtocolKind, load: f64| -> f64 {
            let cfg = WaveConfig {
                protocol,
                cache_capacity: 1, // minimal reuse: uniform dests thrash it
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(scale.side, cfg);
            let mut src = crate::experiments::traffic(
                net.topology(),
                load,
                TrafficPattern::Uniform,
                LengthDist::Fixed(len),
                31,
            );
            run_open_loop(&mut net, &mut src, spec).avg_latency
        };
        // Contention-free latency, and latency at a load near wormhole
        // saturation (where the companion study's >3x factor shows up:
        // blocked wormholes hold channels, circuits do not contend).
        let idle_ratio =
            lat(ProtocolKind::Clrp, 0.05) / lat(ProtocolKind::WormholeOnly, 0.05).max(1e-9);
        let loaded_ratio =
            lat(ProtocolKind::Clrp, 0.25) / lat(ProtocolKind::WormholeOnly, 0.25).max(1e-9);

        // Accepted throughput far beyond wormhole saturation.
        let heavy = 1.5;
        let thpt = |protocol: ProtocolKind| -> f64 {
            let cfg = WaveConfig {
                protocol,
                cache_capacity: 1,
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(scale.side, cfg);
            let mut src = crate::experiments::traffic(
                net.topology(),
                heavy,
                TrafficPattern::Uniform,
                LengthDist::Fixed(len),
                37,
            );
            run_open_loop(&mut net, &mut src, spec).throughput
        };
        let wh_th = thpt(ProtocolKind::WormholeOnly);
        let wv_th = thpt(ProtocolKind::Clrp);

        t.push(vec![
            len.to_string(),
            f2(idle_ratio),
            f2(loaded_ratio),
            format!("{wh_th:.3}"),
            format!("{wv_th:.3}"),
            f2(wv_th / wh_th.max(1e-9)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_messages_favor_wave_switching() {
        let t = run(Scale::small());
        assert!(t.rows.len() >= 2);
        // Throughput ratio at the longest length must exceed the ratio at
        // the shortest (the claim's shape), and exceed 1.
        let first: f64 = t.rows.first().unwrap()[5].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[5].parse().unwrap();
        assert!(
            last > 1.0,
            "wave switching must beat wormhole throughput for long messages: {last}"
        );
        assert!(
            last >= first * 0.9,
            "advantage should not shrink with length: {first} -> {last}"
        );
    }
}
