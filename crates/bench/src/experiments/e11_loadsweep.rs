//! E11 — the signature figure of the companion ICPP'96 evaluation: the
//! latency-vs-offered-load "hockey stick" and the accepted-vs-offered
//! throughput curve, for plain wormhole switching vs wave switching under
//! locality traffic.
//!
//! Expected shape: both systems track each other at light load; wormhole
//! saturates first (latency blows up, accepted throughput flattens); wave
//! switching keeps accepting traffic well past the wormhole knee because
//! circuit traffic bypasses `S0` entirely and each lane moves
//! `clock_multiplier / channel_split` flits per cycle.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, ParallelSweep, RunSpec};
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// Runs E11 serially (equivalent to [`run_with_jobs`] with one job).
#[must_use]
pub fn run(scale: Scale) -> Table {
    run_with_jobs(scale, 1)
}

/// Runs E11, fanning the load points out over `jobs` worker threads.
/// Every point seeds its own network and traffic source, so the table is
/// byte-identical for any job count.
#[must_use]
pub fn run_with_jobs(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "E11",
        "latency and accepted throughput vs offered load (the saturation curve)",
        &[
            "offered",
            "WH lat",
            "WH accepted",
            "wave lat",
            "wave accepted",
        ],
    );
    let loads = scale.sweep(&[0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.2]);
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let pattern = TrafficPattern::HotPairs {
        partners: 3,
        locality: 0.7,
    };

    let rows = ParallelSweep::new(jobs).run(&loads, |_, &load| {
        let go = |protocol: ProtocolKind| {
            let cfg = WaveConfig {
                protocol,
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(scale.side, cfg);
            let mut src = crate::experiments::traffic(
                net.topology(),
                load,
                pattern,
                LengthDist::Fixed(64),
                131,
            );
            run_open_loop(&mut net, &mut src, spec)
        };
        let wh = go(ProtocolKind::WormholeOnly);
        let wv = go(ProtocolKind::Clrp);
        vec![
            f2(load),
            f2(wh.avg_latency),
            f3(wh.throughput),
            f2(wv.avg_latency),
            f3(wv.throughput),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_switching_saturates_later() {
        let t = run(Scale::small());
        // At the heaviest offered load, wave switching accepts strictly
        // more traffic than wormhole.
        let last = t.rows.last().unwrap();
        let wh: f64 = last[2].parse().unwrap();
        let wv: f64 = last[4].parse().unwrap();
        assert!(
            wv > wh * 1.2,
            "wave accepted {wv} must clearly exceed wormhole {wh} past saturation"
        );
        // Latency is monotone-ish in load for wormhole (hockey stick).
        let first_lat: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last_lat: f64 = last[1].parse().unwrap();
        assert!(last_lat > first_lat, "wormhole latency must grow with load");
    }
}
