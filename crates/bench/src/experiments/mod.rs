//! The experiment suite (E1–E15). See the crate docs and EXPERIMENTS.md
//! for the claim-to-experiment mapping.

pub mod e10_variants;
pub mod e11_loadsweep;
pub mod e12_ablations;
pub mod e13_dsm;
pub mod e14_dynamic_faults;
pub mod e15_collectives;
pub mod e1_deadlock;
pub mod e2_livelock;
pub mod e3_msglen;
pub mod e4_reuse;
pub mod e5_locality;
pub mod e6_replacement;
pub mod e7_misroute;
pub mod e8_faults;
pub mod e9_arch;

use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_topology::Topology;
use wavesim_workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

use crate::{Scale, Table};

/// Square 2-D mesh of the given side.
#[must_use]
pub fn mesh(side: u16) -> Topology {
    Topology::mesh(&[side, side])
}

/// A wave network on a square mesh with the given protocol and otherwise
/// default parameters.
#[must_use]
pub fn net(side: u16, protocol: ProtocolKind) -> WaveNetwork {
    WaveNetwork::new(
        mesh(side),
        WaveConfig {
            protocol,
            ..WaveConfig::default()
        },
    )
}

/// A wave network with an explicit config on a square mesh.
#[must_use]
pub fn net_with(side: u16, cfg: WaveConfig) -> WaveNetwork {
    WaveNetwork::new(mesh(side), cfg)
}

/// Open-loop traffic on `topo`.
#[must_use]
pub fn traffic(
    topo: &Topology,
    load: f64,
    pattern: TrafficPattern,
    len: LengthDist,
    seed: u64,
) -> TrafficSource {
    TrafficSource::new(
        topo.clone(),
        TrafficConfig {
            load,
            pattern,
            len,
            seed,
            stop_at: u64::MAX,
        },
    )
}

/// Runs one experiment by id (`"e1"`..`"e14"`). Returns its tables.
///
/// # Panics
/// Panics on an unknown id.
#[must_use]
pub fn run_by_id(id: &str, scale: Scale) -> Vec<Table> {
    run_by_id_with_jobs(id, scale, 1)
}

/// Like [`run_by_id`], but fans sweep points out over `jobs` worker
/// threads where the experiment supports it (the E11 load sweep, the E13
/// locality sweep, the E14 MTBF sweep, and the E15 collective grid).
/// Results are merged in point order and are byte-identical for any job
/// count.
///
/// # Panics
/// Panics on an unknown id.
#[must_use]
pub fn run_by_id_with_jobs(id: &str, scale: Scale, jobs: usize) -> Vec<Table> {
    match id {
        "e1" => vec![e1_deadlock::run(scale)],
        "e2" => vec![e2_livelock::run(scale)],
        "e3" => vec![e3_msglen::run(scale)],
        "e4" => vec![e4_reuse::run(scale)],
        "e5" => vec![e5_locality::run(scale)],
        "e6" => vec![e6_replacement::run(scale)],
        "e7" => vec![e7_misroute::run(scale)],
        "e8" => vec![e8_faults::run(scale)],
        "e9" => vec![e9_arch::run(scale)],
        "e10" => vec![e10_variants::run(scale)],
        "e11" => vec![e11_loadsweep::run_with_jobs(scale, jobs)],
        "e12" => vec![e12_ablations::run(scale)],
        "e13" => vec![e13_dsm::run_with_jobs(scale, jobs)],
        "e14" => vec![e14_dynamic_faults::run_with_jobs(scale, jobs)],
        "e15" => vec![e15_collectives::run_with_jobs(scale, jobs)],
        other => panic!("unknown experiment id {other:?} (use e1..e15)"),
    }
}

/// All experiment ids, in order.
#[must_use]
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
        "e15",
    ]
}
