//! E6 — the replacement algorithm (Fig. 5's `Replace` field).
//!
//! "When a circuit is being established and all the requested channels
//! have been previously reserved by other circuits, a replacement
//! algorithm selects a circuit" (§3.1) — and the same algorithm chooses
//! source-side evictions when the Circuit Cache register file fills.
//! This experiment puts the cache under pressure (more partners than
//! registers) and compares LRU, LFU, FIFO, and Random.

use wavesim_core::{ProtocolKind, ReplacementPolicy, WaveConfig};
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// Runs E6.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6",
        "circuit-cache replacement algorithms under register pressure",
        &[
            "policy",
            "cache size",
            "hit rate",
            "evictions",
            "avg lat",
            "circuit%",
        ],
    );
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("LFU", ReplacementPolicy::Lfu),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random),
    ];
    // Keep the sweep inside the lane-feasible region: total steady-state
    // demand is nodes · cache_size · avg_hops lanes, which must stay below
    // links · k or lane contention (not the register file) becomes the
    // binding constraint and all policies tie. For an 8×8 mesh with k = 4
    // that bound is ~2.6 entries/node.
    let sizes = scale.sweep(&[1usize, 2, 3]);

    for &(name, policy) in &policies {
        for &size in &sizes {
            let cfg = WaveConfig {
                protocol: ProtocolKind::Clrp,
                replacement: policy,
                cache_capacity: size,
                // Plenty of wave switches: lane contention stays low, so
                // the register-file pressure (6 partners vs `size` entries)
                // is what the policies compete on.
                k: 4,
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(scale.side, cfg);
            let mut src = crate::experiments::traffic(
                net.topology(),
                0.10,
                TrafficPattern::HotPairs {
                    partners: 6,
                    locality: 0.9,
                },
                LengthDist::Fixed(48),
                66,
            );
            let r = run_open_loop(&mut net, &mut src, spec);
            t.push(vec![
                name.into(),
                size.to_string(),
                pct(r.wave.hit_rate()),
                r.wave.cache_evictions.to_string(),
                f2(r.avg_latency),
                pct(r.circuit_fraction),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_hit_more() {
        let t = run(Scale::small());
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // Within the LRU rows, hit rate must not decrease with size.
        let lru: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "LRU").collect();
        assert!(lru.len() >= 2);
        let first = parse_pct(&lru.first().unwrap()[2]);
        let last = parse_pct(&lru.last().unwrap()[2]);
        assert!(
            last + 5.0 >= first,
            "hit rate should grow (or hold) with cache size: {first}% -> {last}%"
        );
        // Every policy row ran and evicted something at the smallest size.
        for row in t.rows.iter().filter(|r| r[1] == "1") {
            let ev: u64 = row[3].parse().unwrap();
            assert!(ev > 0, "size-1 cache must evict under 6 partners: {row:?}");
        }
    }
}
