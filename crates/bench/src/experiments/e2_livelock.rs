//! E2 — Theorems 3 & 4: CLRP and CARP are livelock-free.
//!
//! Circuit-churn stress (tiny caches, uniform destinations, force-mode
//! teardowns everywhere) maximises probe backtracking and misrouting; the
//! theorems predict every probe terminates within the History-Store step
//! bound and every accepted message is delivered. The table reports the
//! worst probe observed against the bound.

use wavesim_core::{ClrpVariant, ProtocolKind, WaveConfig};
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::{Scale, Table};

/// Runs E2.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2",
        "livelock freedom: probe work is bounded (Theorems 3 & 4)",
        &[
            "config",
            "probes",
            "backtracks",
            "misroutes",
            "max probe steps",
            "bound",
            "undelivered",
            "verdict",
        ],
    );
    let spec = RunSpec::standard(scale.warmup, scale.measure);

    let configs = [
        (
            "CLRP m=2 cache=2",
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 2,
                misroutes: 2,
                ..WaveConfig::default()
            },
        ),
        (
            "CLRP m=4 cache=1 k=1",
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 1,
                misroutes: 4,
                k: 1,
                ..WaveConfig::default()
            },
        ),
        (
            "CLRP skip-phase1 (all-force)",
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 2,
                clrp: ClrpVariant {
                    skip_phase1: true,
                    ..ClrpVariant::default()
                },
                ..WaveConfig::default()
            },
        ),
    ];

    for (name, cfg) in configs {
        let mut net = crate::experiments::net_with(scale.side, cfg);
        let mut src = crate::experiments::traffic(
            net.topology(),
            0.5,
            TrafficPattern::Uniform,
            LengthDist::Fixed(24),
            23,
        );
        let r = run_open_loop(&mut net, &mut src, spec);
        let s = r.wave;
        let undelivered = r.sent - r.delivered;
        t.push(vec![
            name.into(),
            s.probes_sent.to_string(),
            s.probe_backtracks.to_string(),
            s.probe_misroutes.to_string(),
            r.max_probe_steps.to_string(),
            r.probe_step_bound.to_string(),
            undelivered.to_string(),
            if r.max_probe_steps <= r.probe_step_bound && undelivered == 0 && !r.stalled {
                "OK".into()
            } else {
                "LIVELOCK".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_stay_within_bound() {
        let t = run(Scale::small());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row.last().unwrap(), "OK", "row {row:?}");
            // Stress configs actually exercise the search machinery.
            let probes: u64 = row[1].parse().unwrap();
            assert!(probes > 0);
        }
    }
}
