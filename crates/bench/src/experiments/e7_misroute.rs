//! E7 — MB-m: "in order to maximize the probability of establishing a
//! circuit, a misrouting backtracking protocol with a maximum of m
//! misroutes is used" (§2).
//!
//! A controlled probe experiment in the style of the MB-m source paper
//! (Gaughan & Yalamanchili, ref \[12\]): a fixed fraction of wave lanes is
//! made unavailable (background occupancy), then many establishment
//! attempts run between random node pairs and we measure the probability
//! that the probe reserves a path, as a function of the misroute budget
//! `m`. A single wave switch (`k = 1`) is used so success is attributable
//! to the search itself rather than to retrying other switches.
//!
//! Expected shape: success grows monotonically with `m` (misrouting lets
//! the probe walk around occupied regions), with diminishing returns —
//! the reason the paper keeps `m` small.

use wavesim_core::{LaneId, ProtocolKind, WaveConfig};
use wavesim_sim::SimRng;
use wavesim_topology::NodeId;
use wavesim_workloads::FaultPlan;

use crate::table::{f2, pct};
use crate::{Scale, Table};

struct Outcome {
    success_rate: f64,
    hops_per_probe: f64,
    backtracks_per_probe: f64,
    misroutes_per_probe: f64,
}

fn trial_run(scale: Scale, m: u8, occupancy: f64, trials: u32) -> Outcome {
    let cfg = WaveConfig {
        protocol: ProtocolKind::Carp,
        k: 1,
        misroutes: m,
        cache_capacity: 2,
        ..WaveConfig::default()
    };
    let mut net = crate::experiments::net_with(scale.side, cfg);
    // Background occupancy: lanes held "by other circuits", modelled as
    // unavailable lanes (probes can neither reserve nor force them).
    let plan = FaultPlan::random_lanes(net.topology(), 1, occupancy, 2024);
    for &(link, s) in &plan.lanes {
        net.inject_lane_fault(LaneId::new(link, s))
            .expect("fault plan matches topology");
    }
    let n = u64::from(net.topology().num_nodes());
    let mut rng = SimRng::new(777);
    let mut successes = 0u64;
    let mut now = 0u64;
    for _ in 0..trials {
        let src = NodeId(rng.below(n) as u32);
        let dest = loop {
            let d = NodeId(rng.below(n) as u32);
            if d != src && net.topology().distance(src, d) >= 2 {
                break d;
            }
        };
        net.carp_establish(now, src, dest);
        while net.busy() {
            net.tick(now);
            now += 1;
        }
        let established = net.cache(src).get(dest).is_some_and(|e| e.ack_returned);
        if established {
            successes += 1;
        }
        net.carp_teardown(now, src, dest);
        while net.busy() {
            net.tick(now);
            now += 1;
        }
        now += 10;
    }
    let s = net.stats();
    let probes = s.probes_sent.max(1) as f64;
    Outcome {
        success_rate: successes as f64 / f64::from(trials),
        hops_per_probe: s.probe_hops as f64 / probes,
        backtracks_per_probe: s.probe_backtracks as f64 / probes,
        misroutes_per_probe: s.probe_misroutes as f64 / probes,
    }
}

/// Runs E7.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7",
        "MB-m: setup probability vs misroute budget under lane occupancy",
        &[
            "occupancy",
            "m",
            "setup success",
            "hops/probe",
            "backtracks/probe",
            "misroutes/probe",
        ],
    );
    let ms = scale.sweep(&[0u8, 1, 2, 4]);
    let trials = if scale.side >= 8 { 300 } else { 80 };

    for &occ in &[0.15, 0.30] {
        for &m in &ms {
            let o = trial_run(scale, m, occ, trials);
            t.push(vec![
                pct(occ),
                m.to_string(),
                pct(o.success_rate),
                f2(o.hops_per_probe),
                f2(o.backtracks_per_probe),
                f2(o.misroutes_per_probe),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misrouting_improves_setup_probability() {
        let t = run(Scale::small());
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // Within each occupancy block, m=max must succeed at least as often
        // as m=0 (strictly more at the higher occupancy).
        for occ in ["15.0%", "30.0%"] {
            let block: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == occ).collect();
            assert!(block.len() >= 2);
            let s0 = parse_pct(&block.first().unwrap()[2]);
            let sm = parse_pct(&block.last().unwrap()[2]);
            assert!(
                sm + 1.0 >= s0,
                "misrouting must not hurt success at occ {occ}: {s0}% -> {sm}%"
            );
        }
        // The generous budget is actually exercised somewhere.
        let any_misroutes = t.rows.iter().any(|r| r[5].parse::<f64>().unwrap() > 0.0);
        assert!(any_misroutes);
    }
}
