//! E12 — micro-ablations of design choices DESIGN.md §13 calls out:
//!
//! * **initial-switch staggering** — "it is convenient that neighboring
//!   nodes try to use different initial switches" (§3.1): with staggering
//!   off, every probe starts on switch `S1` and collides with its
//!   neighbours' circuits;
//! * **windowing window size** — §2's end-to-end window must cover
//!   bandwidth × RTT or long-haul circuits throttle ("deeper buffers"
//!   trade-off);
//! * **end-point buffer sizing** — CLRP's blind allocation pays
//!   re-allocation penalties that CARP's compiler-sized buffers never do
//!   (§2/§3).

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

fn locality_run(scale: Scale, cfg: WaveConfig, len: LengthDist) -> crate::RunResult {
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let mut net = crate::experiments::net_with(scale.side, cfg);
    let mut src = crate::experiments::traffic(
        net.topology(),
        0.2,
        TrafficPattern::HotPairs {
            partners: 3,
            locality: 0.8,
        },
        len,
        141,
    );
    run_open_loop(&mut net, &mut src, spec)
}

/// Runs E12.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12",
        "design-choice ablations: switch staggering, window size, buffer sizing",
        &["config", "avg lat", "circuit%", "setups ok", "reallocs"],
    );
    let len64 = LengthDist::Fixed(64);

    // Staggering on/off (k = 2 so the choice matters).
    for (name, stagger) in [("stagger on", true), ("stagger off", false)] {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            stagger_initial_switch: stagger,
            ..WaveConfig::default()
        };
        let r = locality_run(scale, cfg, len64);
        t.push(vec![
            name.into(),
            f2(r.avg_latency),
            pct(r.circuit_fraction),
            r.wave.setups_ok.to_string(),
            r.wave.buffer_reallocs.to_string(),
        ]);
    }

    // Window sweep.
    for window in scale.sweep(&[4u32, 16, 64, 256]) {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            window,
            ..WaveConfig::default()
        };
        let r = locality_run(scale, cfg, len64);
        t.push(vec![
            format!("window {window}"),
            f2(r.avg_latency),
            pct(r.circuit_fraction),
            r.wave.setups_ok.to_string(),
            r.wave.buffer_reallocs.to_string(),
        ]);
    }

    // Buffer sizing under bimodal lengths: a small initial buffer forces
    // re-allocations on every long-message circuit.
    let bimodal = LengthDist::Bimodal {
        short: 16,
        long: 256,
        frac_long: 0.3,
    };
    for (name, initial, penalty) in [
        ("buffers 16f/+64cyc", 16u32, 64u32),
        ("buffers 256f/+64cyc", 256, 64),
    ] {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            initial_buffer_flits: initial,
            realloc_penalty: penalty,
            ..WaveConfig::default()
        };
        let r = locality_run(scale, cfg, bimodal);
        t.push(vec![
            name.into(),
            f2(r.avg_latency),
            pct(r.circuit_fraction),
            r.wave.setups_ok.to_string(),
            r.wave.buffer_reallocs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_show_expected_directions() {
        let t = run(Scale::small());
        let lat = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))[1]
                .parse()
                .unwrap()
        };
        let reallocs = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[4]
                .parse()
                .unwrap()
        };
        // Tiny windows throttle long-haul circuits.
        let w_small = lat("window 4");
        let w_big = lat("window 256");
        assert!(
            w_small > w_big,
            "window 4 ({w_small}) must be slower than window 256 ({w_big})"
        );
        // Small initial buffers re-allocate; ample ones do not.
        assert!(reallocs("buffers 16f/+64cyc") > 0);
        assert_eq!(reallocs("buffers 256f/+64cyc"), 0);
        // Every config still delivers circuit traffic.
        for row in &t.rows {
            let cf = row[2].trim_end_matches('%').parse::<f64>().unwrap();
            assert!(cf > 10.0, "{row:?}");
        }
    }
}
