//! E10 — the §3.1 CLRP simplifications: "when a circuit cannot be
//! established by using Initial Switch, the Force bit can be set without
//! trying the remaining switches … the second phase may try a single
//! switch … the Force bit can be set when the probe is first sent,
//! therefore skipping phase one. The optimal protocol depends on the
//! number of physical switches per node, and on the applications."
//!
//! Ablation of the CLRP variants under circuit-pressure traffic. The
//! interesting trade-off: skipping phase one saves probe rounds but tears
//! down competitors' circuits more aggressively (more forced releases,
//! worse neighbourly behaviour); disabling force entirely avoids
//! teardowns but pushes more traffic to wormhole fallback.

use wavesim_core::{ClrpVariant, ProtocolKind, WaveConfig};
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// Runs E10.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10",
        "CLRP variant ablation (§3.1 simplifications)",
        &[
            "variant",
            "avg lat",
            "probes",
            "forced rel.",
            "fallback msgs",
            "circuit%",
        ],
    );
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let variants = [
        ("full (3 phases)", ClrpVariant::default()),
        (
            "skip phase 1",
            ClrpVariant {
                skip_phase1: true,
                ..ClrpVariant::default()
            },
        ),
        (
            "single-switch force",
            ClrpVariant {
                single_switch_force: true,
                ..ClrpVariant::default()
            },
        ),
        (
            "no force (phases 1+3)",
            ClrpVariant {
                enable_force: false,
                ..ClrpVariant::default()
            },
        ),
    ];

    for (name, v) in variants {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            clrp: v,
            cache_capacity: 4,
            ..WaveConfig::default()
        };
        let mut net = crate::experiments::net_with(scale.side, cfg);
        let mut src = crate::experiments::traffic(
            net.topology(),
            0.3,
            TrafficPattern::HotPairs {
                partners: 4,
                locality: 0.7,
            },
            LengthDist::Fixed(48),
            123,
        );
        let r = run_open_loop(&mut net, &mut src, spec);
        let s = r.wave;
        t.push(vec![
            name.into(),
            f2(r.avg_latency),
            s.probes_sent.to_string(),
            (s.forced_local_releases + s.forced_remote_releases).to_string(),
            s.wormhole_fallbacks.to_string(),
            pct(r.circuit_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_trade_probes_for_teardowns() {
        let t = run(Scale::small());
        assert_eq!(t.rows.len(), 4);
        let by_name = |n: &str| t.rows.iter().find(|r| r[0].starts_with(n)).unwrap();
        let noforce = by_name("no force");
        let full = by_name("full");
        let forced: u64 = noforce[3].parse().unwrap();
        assert_eq!(forced, 0, "no-force variant must never force a release");
        let full_forced: u64 = full[3].parse().unwrap();
        let _ = full_forced; // may be zero at small scale; the column exists
        for row in &t.rows {
            let lat: f64 = row[1].parse().unwrap();
            assert!(lat > 0.0);
        }
    }
}
