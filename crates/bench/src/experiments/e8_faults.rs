//! E8 — "this protocol is very resilient to static faults in the network"
//! (§2, on the MB-m probe, citing ref \[12\]).
//!
//! Wave lanes fail independently at a swept rate before the run starts
//! (the paper's static-fault model). Probes must route around faulty
//! lanes; when no fault-free path exists, messages fall back to wormhole
//! switching, so *delivery* must stay at 100% regardless of the fault
//! rate — only the circuit fraction degrades gracefully.

use wavesim_core::{LaneId, ProtocolKind, WaveConfig};
use wavesim_workloads::{FaultPlan, LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// Runs E8.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8",
        "static wave-lane faults: probe resilience and graceful fallback",
        &[
            "fault rate",
            "faulty lanes",
            "setup success",
            "circuit%",
            "avg lat",
            "delivered",
            "lost",
        ],
    );
    let rates = scale.sweep(&[0.0, 0.05, 0.10, 0.20, 0.40]);
    let spec = RunSpec::standard(scale.warmup, scale.measure);

    for &rate in &rates {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            misroutes: 3, // generous budget: the fault-tolerance enabler
            ..WaveConfig::default()
        };
        let mut net = crate::experiments::net_with(scale.side, cfg);
        let plan = FaultPlan::random_lanes(net.topology(), cfg.k, rate, 88);
        for &(link, s) in &plan.lanes {
            net.inject_lane_fault(LaneId::new(link, s))
                .expect("fault plan matches topology");
        }
        let mut src = crate::experiments::traffic(
            net.topology(),
            0.15,
            TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.8,
            },
            LengthDist::Fixed(64),
            99,
        );
        let r = run_open_loop(&mut net, &mut src, spec);
        t.push(vec![
            pct(rate),
            plan.len().to_string(),
            pct(r.wave.setup_success_rate()),
            pct(r.circuit_fraction),
            f2(r.avg_latency),
            r.delivered.to_string(),
            (r.sent - r.delivered).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_message_is_ever_lost() {
        let t = run(Scale::small());
        for row in &t.rows {
            assert_eq!(row.last().unwrap(), "0", "lost messages in {row:?}");
        }
    }

    #[test]
    fn circuit_fraction_degrades_gracefully() {
        let t = run(Scale::small());
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let healthy = parse_pct(&t.rows.first().unwrap()[3]);
        let broken = parse_pct(&t.rows.last().unwrap()[3]);
        assert!(
            healthy >= broken,
            "more faults cannot increase circuit use: {healthy}% vs {broken}%"
        );
        assert!(healthy > 10.0, "healthy network must use circuits");
    }
}
