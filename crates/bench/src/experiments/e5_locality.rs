//! E5 — "the CARP protocol is able to achieve a higher performance
//! because a circuit is only established when there is enough temporal
//! communication locality" (§3); CLRP in turn beats plain wormhole once
//! locality makes circuits reusable.
//!
//! All three systems replay the **identical** phased pairwise-exchange
//! message schedule; only circuit management differs:
//!
//! * *wormhole* ignores circuits entirely;
//! * *CLRP* discovers reuse on the fly (first message of each burst pays
//!   the establishment, and idle circuits linger and get force-evicted);
//! * *CARP* executes the compiler's ESTABLISH/TEARDOWN bracket — and the
//!   compiler only emits circuits when the burst is long enough
//!   (`use_circuits = burst ≥ 4` here), per §3.2.
//!
//! The locality knob is the burst length: how many messages each
//! (source, partner) pair exchanges per phase. Expected shape: at burst 1
//! wormhole wins (CLRP wastes probes, CARP ≡ wormhole); as bursts grow
//! both circuit protocols pull ahead, CARP slightly ahead of CLRP because
//! its prefetch (`setup_lead`) hides the probe round-trip.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_workloads::{CarpTrace, PairwiseSpec};

use crate::runner::{run_carp_trace, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// Runs E5.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5",
        "temporal locality (burst length): wormhole vs CLRP vs CARP on one schedule",
        &[
            "burst",
            "WH lat",
            "CLRP lat",
            "CLRP circuit%",
            "CARP lat",
            "CARP circuit%",
        ],
    );
    let bursts = scale.sweep(&[1u32, 2, 4, 8, 16]);
    let spec = RunSpec::standard(0, scale.measure);

    for &burst in &bursts {
        let mk_trace = |use_circuits: bool| {
            CarpTrace::pairwise(
                &crate::experiments::mesh(scale.side),
                &PairwiseSpec {
                    partners: 3,
                    phases: 3,
                    msgs_per_burst: burst,
                    len: 64,
                    phase_gap: scale.measure / 3 + 1_000,
                    setup_lead: 200,
                    send_gap: 60,
                    // The "compiler decision": circuits only for real bursts.
                    use_circuits,
                    seed: 55,
                },
            )
        };
        let run_one = |protocol: ProtocolKind| {
            let cfg = WaveConfig {
                protocol,
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(scale.side, cfg);
            let carp_circuits = protocol == ProtocolKind::Carp && burst >= 4;
            let mut trace = mk_trace(carp_circuits);
            run_carp_trace(&mut net, &mut trace, spec)
        };
        let wh = run_one(ProtocolKind::WormholeOnly);
        let clrp = run_one(ProtocolKind::Clrp);
        let carp = run_one(ProtocolKind::Carp);

        t.push(vec![
            burst.to_string(),
            f2(wh.avg_latency),
            f2(clrp.avg_latency),
            pct(clrp.circuit_fraction),
            f2(carp.avg_latency),
            pct(carp.circuit_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_pay_off_with_bursts() {
        let t = run(Scale::small());
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        // Single-message "bursts": the CARP compiler emits no circuits.
        assert_eq!(
            parse_pct(&first[5]),
            0.0,
            "CARP must skip circuits at burst 1"
        );
        // Long bursts: both circuit protocols carry most traffic on circuits
        // and beat wormhole latency.
        assert!(parse_pct(&last[3]) > 50.0, "CLRP circuit% {last:?}");
        assert!(parse_pct(&last[5]) > 50.0, "CARP circuit% {last:?}");
        let wh: f64 = last[1].parse().unwrap();
        let clrp: f64 = last[2].parse().unwrap();
        let carp: f64 = last[4].parse().unwrap();
        assert!(
            clrp < wh,
            "CLRP {clrp} must beat wormhole {wh} at high burst"
        );
        assert!(
            carp < wh,
            "CARP {carp} must beat wormhole {wh} at high burst"
        );
    }
}
