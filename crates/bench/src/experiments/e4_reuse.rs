//! E4 — "for short messages, wave switching can only improve performance
//! if circuits are reused" (§1).
//!
//! Fixed communicating pairs exchange bursts of 16-flit messages; the
//! burst size (reuse count) sweeps from 1 to 32. Expected shape: at reuse
//! 1 CLRP pays the probe round-trip for nothing and loses to wormhole; as
//! reuse grows the setup cost amortises and the per-message latency drops
//! below wormhole.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_network::Message;
use wavesim_sim::{Cycle, SimRng};
use wavesim_topology::NodeId;

use crate::runner::{run_scripted, RunSpec};
use crate::table::f2;
use crate::{Scale, Table};

const MSG_LEN: u32 = 8;

fn script(side: u16, pairs: usize, reuse: u32, gap: Cycle, seed: u64) -> Vec<(Cycle, Message)> {
    let n = u32::from(side) * u32::from(side);
    let mut rng = SimRng::new(seed);
    let mut out = Vec::new();
    let mut id = 0u64;
    let mut used: Vec<u32> = Vec::new();
    for p in 0..pairs {
        // Distinct sources so pairs do not serialize on injection.
        let src = loop {
            let c = rng.below(u64::from(n)) as u32;
            if !used.contains(&c) {
                used.push(c);
                break c;
            }
        };
        let dest = loop {
            let c = rng.below(u64::from(n)) as u32;
            if c != src {
                break c;
            }
        };
        let t0 = (p as u64) * 3; // slight stagger
        for i in 0..reuse {
            let t = t0 + u64::from(i) * gap;
            out.push((t, Message::new(id, NodeId(src), NodeId(dest), MSG_LEN, t)));
            id += 1;
        }
    }
    out.sort_by_key(|(t, _)| *t);
    out
}

/// Runs E4.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4",
        "short messages (8 flits): per-message latency vs circuit reuse",
        &["reuse", "WH lat", "CLRP lat", "ratio (CLRP/WH)", "hit rate"],
    );
    let reuses = scale.sweep(&[1u32, 2, 4, 8, 16, 32]);
    // Short-message economics need realistic path lengths: pin the
    // network at >= 8x8 even at reduced scale (scripted runs are cheap).
    let side = scale.side.max(8);
    let pairs = usize::from(side);
    let gap = 40; // cycles between messages of a burst

    for &reuse in &reuses {
        let spec = RunSpec::standard(0, u64::from(reuse) * gap + 200);
        let sc = script(side, pairs, reuse, gap, 101);
        let lat = |protocol: ProtocolKind| {
            let cfg = WaveConfig {
                protocol,
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(side, cfg);
            run_scripted(&mut net, &sc, spec)
        };
        let wh = lat(ProtocolKind::WormholeOnly);
        let wv = lat(ProtocolKind::Clrp);
        t.push(vec![
            reuse.to_string(),
            f2(wh.avg_latency),
            f2(wv.avg_latency),
            f2(wv.avg_latency / wh.avg_latency.max(1e-9)),
            f2(wv.wave.hit_rate()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_amortises_setup_cost() {
        let t = run(Scale::small());
        let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        // Single-shot short messages should NOT benefit from circuits...
        assert!(
            first > 0.95,
            "no-reuse short messages must not beat wormhole: ratio {first}"
        );
        // ...but heavy reuse must close most of the gap (and typically win).
        assert!(
            last < first,
            "reuse must improve the CLRP/WH ratio: {first} -> {last}"
        );
        // Hit rate grows with reuse.
        let h_first: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let h_last: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(h_last > h_first);
    }
}
