//! E1 — Theorems 1 & 2: CLRP and CARP are deadlock-free.
//!
//! Saturation-level uniform and hotspot traffic on mesh and torus
//! networks, with the progress monitor armed. The theorems predict every
//! run drains with zero stalls; the `verdict` column must read `OK` on
//! every row. (The negative control that proves the detector works —
//! single-class torus DOR deadlocking — lives in the verify-crate tests
//! and the integration suite, not here, because it requires a broken
//! routing function the public constructors refuse to build.)

use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_topology::{Topology, TopologyKind};
use wavesim_workloads::{CarpTrace, LengthDist, TrafficPattern};

use crate::runner::{run_carp_trace, run_open_loop, RunSpec};
use crate::{Scale, Table};

fn topo(kind: TopologyKind, side: u16) -> Topology {
    match kind {
        TopologyKind::Mesh => Topology::mesh(&[side, side]),
        TopologyKind::Torus => Topology::torus(&[side, side]),
    }
}

/// Runs E1.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1",
        "deadlock freedom under saturation (Theorems 1 & 2)",
        &[
            "topology",
            "protocol",
            "pattern",
            "load",
            "sent",
            "delivered",
            "stalls",
            "verdict",
        ],
    );
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let loads = [0.4, 0.8];
    let hot = (u32::from(scale.side) * u32::from(scale.side)) / 2;

    for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
        for &load in &loads {
            for (pname, pattern) in [
                ("uniform", TrafficPattern::Uniform),
                (
                    "hotspot",
                    TrafficPattern::Hotspot {
                        node: hot,
                        fraction: 0.2,
                    },
                ),
            ] {
                let mut net = WaveNetwork::new(
                    topo(kind, scale.side),
                    WaveConfig {
                        protocol: ProtocolKind::Clrp,
                        ..WaveConfig::default()
                    },
                );
                let mut src = crate::experiments::traffic(
                    net.topology(),
                    load,
                    pattern,
                    LengthDist::Fixed(32),
                    11,
                );
                let r = run_open_loop(&mut net, &mut src, spec);
                t.push(vec![
                    format!("{kind:?}"),
                    "CLRP".into(),
                    pname.into(),
                    format!("{load}"),
                    r.sent.to_string(),
                    r.delivered.to_string(),
                    u64::from(r.stalled).to_string(),
                    if r.clean() {
                        "OK".into()
                    } else {
                        "DEADLOCK".into()
                    },
                ]);
            }
        }
        // CARP under a dense phased trace.
        let mut net = WaveNetwork::new(
            topo(kind, scale.side),
            WaveConfig {
                protocol: ProtocolKind::Carp,
                ..WaveConfig::default()
            },
        );
        let mut trace = CarpTrace::pairwise(
            net.topology(),
            &wavesim_workloads::carp::PairwiseSpec {
                partners: 3,
                phases: 3,
                msgs_per_burst: 8,
                len: 64,
                phase_gap: scale.measure / 3 + 500,
                setup_lead: 300,
                send_gap: 10,
                seed: 7,
                ..wavesim_workloads::carp::PairwiseSpec::default()
            },
        );
        let r = run_carp_trace(&mut net, &mut trace, spec);
        t.push(vec![
            format!("{kind:?}"),
            "CARP".into(),
            "pairwise-trace".into(),
            "-".into(),
            r.sent.to_string(),
            r.delivered.to_string(),
            u64::from(r.stalled).to_string(),
            if r.drained && !r.stalled && r.sent == r.delivered {
                "OK".into()
            } else {
                "DEADLOCK".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_deadlock_free() {
        let t = run(Scale::small());
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            assert_eq!(row.last().unwrap(), "OK", "row {row:?}");
        }
    }
}
