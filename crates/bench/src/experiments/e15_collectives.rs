//! E15 — collective replay: dependency-aware traces under each protocol.
//!
//! The paper's workloads are phased parallel kernels, and their defining
//! structure is *dependency*, not arrival rate: a reduce step cannot start
//! until its children's partial sums arrive. E1–E14 drive open- and
//! closed-loop generators; this experiment replays the classic collectives
//! as [`wavesim_workloads::DepTrace`]s — all-to-all (shifted rounds),
//! binomial-tree reduce and broadcast, and a phased transpose sweep — so
//! injection timing *responds to the network's own delivery order*.
//!
//! Each (collective, protocol, message length) point replays the same
//! trace under:
//!
//! * **CLRP** — the run-time protocol, establishing and caching circuits
//!   on demand (the collectives' repeated pairs are exactly the temporal
//!   locality §3.1 exploits);
//! * **CARP** — the compiler-aided protocol *without* its compiler: a
//!   replayed trace carries no `ESTABLISH` ops, so every send degrades to
//!   wormhole delivery (§3.2's fallback). This is the honest baseline for
//!   "CARP given only the message list";
//! * **MB-1** — CLRP restricted to a single cache entry per node,
//!   modelling the minimal-buffering variant: circuits are established
//!   per-conversation but barely reused.
//!
//! Columns: collective, protocol, message length, trace size, delivered
//! count, makespan (cycles to drain), mean and p99 latency (network time:
//! release-to-delivery), and circuit-carried fraction.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_topology::{NodeId, Topology};
use wavesim_workloads::collectives;
use wavesim_workloads::{DepTrace, TrafficPattern};

use crate::runner::{run_dep_trace, ParallelSweep, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// The collective families replayed by E15, in table order.
const COLLECTIVES: [&str; 4] = ["all-to-all", "reduce", "broadcast", "transpose-sweep"];

/// Protocol variants compared: label plus network config.
fn variants() -> Vec<(&'static str, WaveConfig)> {
    vec![
        (
            "CLRP",
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                ..WaveConfig::default()
            },
        ),
        (
            "CARP",
            WaveConfig {
                protocol: ProtocolKind::Carp,
                ..WaveConfig::default()
            },
        ),
        (
            "MB-1",
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 1,
                ..WaveConfig::default()
            },
        ),
    ]
}

/// Builds the named collective's dependency trace on `topo`.
///
/// # Panics
/// Panics on an unknown collective name (a bug, not an input error).
#[must_use]
pub fn build_trace(topo: &Topology, which: &str, len: u32) -> DepTrace {
    match which {
        "all-to-all" => collectives::all_to_all(topo, len),
        "reduce" => collectives::reduce(topo, NodeId(0), len),
        "broadcast" => collectives::broadcast(topo, NodeId(0), len),
        "transpose-sweep" => {
            collectives::pattern_sweep(topo, TrafficPattern::Transpose, 3, len, 1551)
        }
        other => panic!("unknown collective {other:?}"),
    }
}

/// Runs E15 serially (equivalent to [`run_with_jobs`] with one job).
#[must_use]
pub fn run(scale: Scale) -> Table {
    run_with_jobs(scale, 1)
}

/// Runs E15, fanning the (collective, protocol, length) points out over
/// `jobs` worker threads. Every point builds its own trace and network
/// from the point value, so the table is byte-identical for any job
/// count.
#[must_use]
pub fn run_with_jobs(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "E15",
        "collective replay: dependency-gated traces under CLRP / CARP / MB-1",
        &[
            "collective",
            "protocol",
            "len",
            "msgs",
            "delivered",
            "makespan",
            "avg lat",
            "p99",
            "circuit%",
        ],
    );
    let lens: Vec<u32> = scale.sweep(&[8, 32, 128]);
    let mut points: Vec<(&str, usize, u32)> = Vec::new();
    for which in COLLECTIVES {
        for v in 0..variants().len() {
            for &len in &lens {
                points.push((which, v, len));
            }
        }
    }

    let rows = ParallelSweep::new(jobs).run(&points, |_, &(which, v, len)| {
        let (label, cfg) = variants().swap_remove(v);
        let mut net = crate::experiments::net_with(scale.side, cfg);
        let trace = build_trace(net.topology(), which, len);
        let r = run_dep_trace(&mut net, &trace, RunSpec::replay(trace.horizon()));
        assert!(
            r.clean(),
            "E15 replay must drain cleanly: {which}/{label}/{len}: {r:?}"
        );
        vec![
            which.to_string(),
            label.to_string(),
            len.to_string(),
            trace.len().to_string(),
            r.delivered.to_string(),
            r.end.to_string(),
            f2(r.avg_latency),
            r.p99_latency.to_string(),
            pct(r.circuit_fraction),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            sweep_points: 2,
            ..Scale::small()
        }
    }

    #[test]
    fn every_collective_delivers_its_whole_trace() {
        let t = run(tiny());
        assert_eq!(t.rows.len(), COLLECTIVES.len() * variants().len() * 2);
        for row in &t.rows {
            assert_eq!(row[3], row[4], "msgs != delivered in {row:?}");
        }
    }

    #[test]
    fn carp_without_establish_ops_rides_wormhole() {
        let t = run(tiny());
        for row in t.rows.iter().filter(|r| r[1] == "CARP") {
            assert_eq!(row[8], "0.0%", "trace-only CARP cannot build circuits");
        }
    }

    #[test]
    fn clrp_uses_circuits_on_collective_locality() {
        let t = run(tiny());
        let frac = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let best = t
            .rows
            .iter()
            .filter(|r| r[1] == "CLRP")
            .map(|r| frac(&r[8]))
            .fold(0.0_f64, f64::max);
        assert!(
            best > 10.0,
            "some CLRP collective replay must ride circuits: {t:?}"
        );
    }

    #[test]
    fn table_is_byte_identical_across_jobs() {
        let serial = run_with_jobs(tiny(), 1);
        let fanned = run_with_jobs(tiny(), 4);
        assert_eq!(format!("{serial:?}"), format!("{fanned:?}"));
    }
}
