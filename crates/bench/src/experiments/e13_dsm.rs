//! E13 — the paper's DSM motivation, closed-loop: "in distributed
//! shared-memory multiprocessors, the interconnection network is used
//! either to access remote memory locations or to support a cache
//! coherence protocol … reducing the network hardware latency and
//! increasing network throughput is crucial" (§1).
//!
//! Each node keeps a bounded number of outstanding remote accesses to its
//! hot home nodes: a 4-flit request, a served 64-flit reply. The headline
//! metric is the **round-trip time** — the quantity that actually stalls
//! a DSM processor. Sweep: home-locality, wormhole vs CLRP.
//!
//! Expected shape: with locality, CLRP's request *and* reply both ride
//! cached circuits (homes cache the reverse circuit too), cutting the
//! round trip; with no locality the circuit thrash erodes the advantage.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_workloads::{ReqRepConfig, ReqRepWorkload};

use crate::runner::{run_request_reply, ParallelSweep, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// Runs E13 serially (equivalent to [`run_with_jobs`] with one job).
#[must_use]
pub fn run(scale: Scale) -> Table {
    run_with_jobs(scale, 1)
}

/// Runs E13, fanning the locality points out over `jobs` worker threads.
/// Every point builds its own networks and workloads from the point
/// value, so the table is byte-identical for any job count.
#[must_use]
pub fn run_with_jobs(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "E13",
        "closed-loop DSM remote accesses: round-trip time, wormhole vs CLRP",
        &[
            "locality",
            "WH rtt",
            "CLRP rtt",
            "speedup",
            "CLRP hit rate",
            "completed",
        ],
    );
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let localities = scale.sweep(&[0.0, 0.5, 0.9]);

    let rows = ParallelSweep::new(jobs).run(&localities, |_, &loc| {
        let go = |protocol: ProtocolKind| {
            let cfg = WaveConfig {
                protocol,
                ..WaveConfig::default()
            };
            let mut net = crate::experiments::net_with(scale.side, cfg);
            let mut wl = ReqRepWorkload::new(
                net.topology().clone(),
                ReqRepConfig {
                    partners: 3,
                    locality: loc,
                    outstanding: 2,
                    req_len: 4,
                    reply_len: 64,
                    service_time: 20,
                    think_time: 10,
                    seed: 161,
                    stop_at: u64::MAX,
                },
            );
            run_request_reply(&mut net, &mut wl, spec)
        };
        let wh = go(ProtocolKind::WormholeOnly);
        let wv = go(ProtocolKind::Clrp);
        vec![
            f2(loc),
            f2(wh.avg_round_trip),
            f2(wv.avg_round_trip),
            f2(wh.avg_round_trip / wv.avg_round_trip.max(1e-9)),
            pct(wv.wave.hit_rate()),
            format!("{}+{}", wh.completed, wv.completed),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsm_round_trips_complete_cleanly() {
        let t = run(Scale::small());
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let wh: f64 = row[1].parse().unwrap();
            let wv: f64 = row[2].parse().unwrap();
            assert!(wh > 0.0 && wv > 0.0, "round trips measured: {row:?}");
        }
        // Hit rate grows with locality.
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let first = parse_pct(&t.rows.first().unwrap()[4]);
        let last = parse_pct(&t.rows.last().unwrap()[4]);
        assert!(
            last > first,
            "locality must raise the hit rate: {first} -> {last}"
        );
    }

    #[test]
    fn table_is_byte_identical_across_jobs() {
        let serial = run_with_jobs(Scale::small(), 1);
        let fanned = run_with_jobs(Scale::small(), 4);
        assert_eq!(format!("{serial:?}"), format!("{fanned:?}"));
    }
}
