//! E14 — dynamic faults: lanes fail *and repair* mid-run, under load.
//!
//! E8 covers the paper's static model (faults present before traffic).
//! This experiment stresses the harder dynamic case: a timed
//! [`FaultSchedule`] breaks whole links while circuits hold them, forcing
//! teardown-then-fault, CLRP's bounded re-establishment retries, and —
//! when the retry budget runs dry — graceful degradation to wormhole
//! delivery. Sweeping the per-link MTBF from rare to relentless, the
//! invariants are the same as E8's: *delivery stays at 100% at every
//! fault rate*, and only the circuit fraction degrades as churn grows.
//!
//! Columns: per-link MTBF (cycles), fail/repair events applied, circuits
//! broken by faults, re-establishment retries launched, circuit-carried
//! fraction, mean latency, delivered and lost message counts.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_workloads::{FaultSchedule, LengthDist, TrafficPattern};

use crate::runner::{apply_fault_schedule, run_open_loop, ParallelSweep, RunSpec};
use crate::table::{f2, pct};
use crate::{Scale, Table};

/// Runs E14 serially (equivalent to [`run_with_jobs`] with one job).
#[must_use]
pub fn run(scale: Scale) -> Table {
    run_with_jobs(scale, 1)
}

/// Runs E14, fanning the MTBF points out over `jobs` worker threads.
/// Every point builds its own network, traffic source, and fault
/// schedule from the point value, so the table is byte-identical for any
/// job count.
///
/// # Panics
/// Panics if a drawn fault schedule does not fit the network it was
/// drawn for (a bug, not an input error).
#[must_use]
pub fn run_with_jobs(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "E14",
        "dynamic lane faults: teardown-then-fault, bounded retry, graceful fallback",
        &[
            "link MTBF",
            "events",
            "broken",
            "retries",
            "circuit%",
            "avg lat",
            "delivered",
            "lost",
        ],
    );
    // Largest (healthiest) first: the monotonic-degradation check reads
    // the first and last rows.
    let mtbfs: Vec<u64> = scale.sweep(&[50_000, 8_000, 2_000, 600]);
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let horizon = scale.warmup + scale.measure;

    let rows = ParallelSweep::new(jobs).run(&mtbfs, |_, &mtbf| {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            misroutes: 3, // generous budget: the fault-tolerance enabler
            ..WaveConfig::default()
        };
        let mut net = crate::experiments::net_with(scale.side, cfg);
        let sched = FaultSchedule::random_mtbf(net.topology(), mtbf, mtbf / 8 + 1, horizon, 1414);
        apply_fault_schedule(&mut net, &sched).expect("schedule drawn from this topology");
        let mut src = crate::experiments::traffic(
            net.topology(),
            0.15,
            TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.8,
            },
            LengthDist::Fixed(64),
            99,
        );
        let r = run_open_loop(&mut net, &mut src, spec);
        vec![
            mtbf.to_string(),
            sched.len().to_string(),
            r.wave.circuits_broken.to_string(),
            r.wave.establish_retries.to_string(),
            pct(r.circuit_fraction),
            f2(r.avg_latency),
            r.delivered.to_string(),
            (r.sent - r.delivered).to_string(),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_message_is_ever_lost_under_fault_churn() {
        let t = run(Scale::small());
        for row in &t.rows {
            assert_eq!(row.last().unwrap(), "0", "lost messages in {row:?}");
        }
    }

    #[test]
    fn churn_breaks_circuits_and_triggers_retries() {
        let t = run(Scale::small());
        let last = t.rows.last().unwrap();
        let broken: u64 = last[2].parse().unwrap();
        let retries: u64 = last[3].parse().unwrap();
        assert!(broken > 0, "shortest MTBF must break live circuits: {t:?}");
        assert!(retries > 0, "CLRP must retry broken circuits: {t:?}");
    }

    #[test]
    fn circuit_fraction_degrades_with_mtbf() {
        let t = run(Scale::small());
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let healthy = parse_pct(&t.rows.first().unwrap()[4]);
        let churned = parse_pct(&t.rows.last().unwrap()[4]);
        assert!(
            healthy >= churned,
            "more churn cannot increase circuit use: {healthy}% vs {churned}%"
        );
        assert!(healthy > 10.0, "near-fault-free network must use circuits");
    }
}
