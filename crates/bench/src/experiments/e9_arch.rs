//! E9 — the architecture's flexibility (§2): "several parameters can be
//! adjusted, including the number of fast switches, the number of virtual
//! channels for wormhole switching, and the routing protocols".
//!
//! Sweep of `k` (wave switches per router, incl. the "simplest version of
//! wave router … k = 1"), the wave-pipelining clock multiplier α (the
//! companion study's Spice result caps it at 4), and the wormhole VC
//! count `w`, under locality traffic. Expected shape: more wave switches
//! and higher α raise circuit throughput; `w` matters mostly for the
//! wormhole share.

use wavesim_core::{ProtocolKind, WaveConfig};
use wavesim_network::WormholeConfig;
use wavesim_workloads::{LengthDist, TrafficPattern};

use crate::runner::{run_open_loop, RunSpec};
use crate::table::{f2, f3, pct};
use crate::{Scale, Table};

/// Runs E9.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9",
        "architecture sweep: wave switches k, clock ratio α, wormhole VCs w",
        &[
            "k",
            "alpha",
            "w",
            "avg lat",
            "thpt",
            "circuit%",
            "setups ok",
        ],
    );
    let spec = RunSpec::standard(scale.warmup, scale.measure);
    let pattern = TrafficPattern::HotPairs {
        partners: 3,
        locality: 0.8,
    };

    let mut combos: Vec<(u8, u32, u8)> = Vec::new();
    for &k in &[1u8, 2, 4] {
        combos.push((k, 4, 2));
    }
    for &alpha in &[1u32, 2, 4] {
        combos.push((2, alpha, 2));
    }
    for &w in &[1u8, 2, 4] {
        combos.push((2, 4, w));
    }
    combos.dedup();
    let combos = scale.sweep(&combos);

    for &(k, alpha, w) in &combos {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            k,
            clock_multiplier: alpha,
            wormhole: WormholeConfig {
                w,
                ..WormholeConfig::default()
            },
            ..WaveConfig::default()
        };
        let mut net = crate::experiments::net_with(scale.side, cfg);
        let mut src =
            crate::experiments::traffic(net.topology(), 0.3, pattern, LengthDist::Fixed(64), 111);
        let r = run_open_loop(&mut net, &mut src, spec);
        t.push(vec![
            k.to_string(),
            alpha.to_string(),
            w.to_string(),
            f2(r.avg_latency),
            f3(r.throughput),
            pct(r.circuit_fraction),
            r.wave.setups_ok.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_completes() {
        let t = run(Scale::small());
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let lat: f64 = row[3].parse().unwrap();
            assert!(lat > 0.0, "row {row:?} has no latency sample");
        }
    }
}
