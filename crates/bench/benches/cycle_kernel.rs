//! Cycle-kernel throughput benchmark: simulated cycles per wall-clock
//! second at three load points (low / mid / saturation) on 8×8 and 16×16
//! tori, CLRP protocol — the tracked perf baseline for the simulator's
//! inner loop.
//!
//! Plain `harness = false` timing main (the offline build has no bench
//! framework). Writes `BENCH_cycle_kernel.json` (override with
//! `BENCH_OUT`) and prints a table. Knobs for CI smoke runs:
//! `BENCH_MEASURE` (measurement cycles, default 3000), `BENCH_ITERS`
//! (repeats per point, best taken, default 3), `BENCH_SIDES`
//! (comma-separated torus sides, default "8,16").
//!
//! The metric divides the *simulated* end cycle of the run (warmup +
//! measurement + drain) by the wall time of the whole run, so a kernel
//! that fast-forwards idle cycles gets credit for them — exactly the
//! effect the active-set kernel targets at low load.
//!
//! A second section benchmarks the spatial shard partitioning: one
//! 64×64-torus saturation point per shard count (`BENCH_SHARDS`,
//! default "1,2,4"; side via `BENCH_SHARD_SIDE`, measurement cycles via
//! `BENCH_SHARD_MEASURE`, default 500, single iteration). Results are
//! byte-identical across shard counts by construction — only wall time
//! may differ — and each entry records the per-shard wall-clock
//! breakdown (`shard_wall_ns`) from the fabric's shard timers, so load
//! imbalance between the router bands is visible in the artifact.
//!
//! Regression gate: `BENCH_ENFORCE=1` compares this run against the
//! committed `BENCH_cycle_kernel.json` baseline (override with
//! `BENCH_BASELINE`) and fails when any point's *kernel work intensity*
//! — deterministic work counters per simulated cycle — grew more than
//! `BENCH_TOLERANCE_PCT` (default 15). Work counters are scheduling- and
//! machine-independent, so this gate is meaningful on shared CI runners
//! where wall clock is not; `BENCH_ENFORCE_WALL=1` additionally gates
//! wall-clock cycles/sec for same-machine comparisons. Points are only
//! compared when the baseline's `measure_cycles` matches this run's.

use std::time::Instant;

use wavesim_bench::{run_open_loop, RunSpec};
use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_json::Value;
use wavesim_topology::Topology;
use wavesim_workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

const LOADS: [(&str, f64); 3] = [("low", 0.05), ("mid", 0.30), ("sat", 0.80)];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct PointResult {
    side: u16,
    label: String,
    load: f64,
    shards: usize,
    sim_cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    delivered: u64,
    shard_wall_ns: Vec<u64>,
    kernel: Value,
}

fn run_point(
    side: u16,
    label: &str,
    load: f64,
    measure: u64,
    iters: u64,
    shards: usize,
) -> PointResult {
    let mut best: Option<PointResult> = None;
    for _ in 0..iters {
        let topo = Topology::torus(&[side, side]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                ..WaveConfig::default()
            },
        );
        net.set_shards(shards);
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load,
                pattern: TrafficPattern::HotPairs {
                    partners: 3,
                    locality: 0.7,
                },
                len: LengthDist::Fixed(64),
                seed: 131,
                ..TrafficConfig::default()
            },
        );
        let t0 = Instant::now();
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
        let wall_s = t0.elapsed().as_secs_f64();
        assert!(!r.stalled, "{side}x{side} @ {load} stalled");
        let point = PointResult {
            side,
            label: label.to_string(),
            load,
            shards: net.shards(),
            sim_cycles: r.end,
            wall_s,
            cycles_per_sec: r.end as f64 / wall_s,
            delivered: r.delivered,
            shard_wall_ns: net.fabric().shard_wall_ns().to_vec(),
            kernel: kernel_json(&net),
        };
        if best
            .as_ref()
            .is_none_or(|b| point.cycles_per_sec > b.cycles_per_sec)
        {
            best = Some(point);
        }
    }
    best.expect("iters >= 1")
}

/// Cycle-kernel counters, when the build exposes them (post-seed kernels).
fn kernel_json(net: &WaveNetwork) -> Value {
    let k = net.kernel_stats();
    Value::obj(vec![
        ("ticks", Value::from(k.ticks)),
        ("routers_scanned", Value::from(k.routers_scanned)),
        ("vcs_touched", Value::from(k.vcs_touched)),
        ("events_routed", Value::from(k.events_routed)),
    ])
}

/// Deterministic kernel work per simulated cycle for one result entry.
fn intensity(entry: &Value) -> Option<f64> {
    let sim = entry.get("sim_cycles")?.as_u64()?;
    let k = entry.get("kernel")?;
    let work = k.get("routers_scanned")?.as_u64()?
        + k.get("vcs_touched")?.as_u64()?
        + k.get("events_routed")?.as_u64()?;
    (sim > 0).then(|| work as f64 / sim as f64)
}

/// Compares `current` against the committed baseline (read into `text`
/// before the current results were written, since the default output path
/// IS the baseline file); returns the gate violations.
fn enforce_baseline(
    current: &Value,
    text: &str,
    tolerance_pct: f64,
    gate_wall: bool,
) -> Vec<String> {
    let baseline = Value::parse(text).expect("baseline json parses");
    if baseline.get("measure_cycles").and_then(Value::as_u64)
        != current.get("measure_cycles").and_then(Value::as_u64)
    {
        println!("baseline measure_cycles differs; gate skipped");
        return Vec::new();
    }
    let key = |e: &Value| {
        (
            e.get("topology").and_then(Value::as_str).map(String::from),
            e.get("point").and_then(Value::as_str).map(String::from),
        )
    };
    let empty = Vec::new();
    let cur_results = current
        .get("results")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let mut violations = Vec::new();
    for base in baseline
        .get("results")
        .and_then(Value::as_array)
        .unwrap_or(&empty)
    {
        let Some(cur) = cur_results.iter().find(|c| key(c) == key(base)) else {
            continue;
        };
        let (topo, point) = key(base);
        let name = format!("{}/{}", topo.unwrap_or_default(), point.unwrap_or_default());
        if let (Some(b), Some(c)) = (intensity(base), intensity(cur)) {
            let growth_pct = (c / b - 1.0) * 100.0;
            println!("gate {name}: work/cycle {b:.1} -> {c:.1} ({growth_pct:+.1}%)");
            if growth_pct > tolerance_pct {
                violations.push(format!(
                    "{name}: kernel work intensity grew {growth_pct:.1}% (> {tolerance_pct}%)"
                ));
            }
        }
        if gate_wall {
            let b = base.get("cycles_per_sec").and_then(Value::as_f64);
            let c = cur.get("cycles_per_sec").and_then(Value::as_f64);
            if let (Some(b), Some(c)) = (b, c) {
                let slowdown_pct = (b / c - 1.0) * 100.0;
                if slowdown_pct > tolerance_pct {
                    violations.push(format!(
                        "{name}: cycles/sec fell {slowdown_pct:.1}% \
                         ({b:.0} -> {c:.0}, > {tolerance_pct}%)"
                    ));
                }
            }
        }
    }
    violations
}

fn main() {
    let measure = env_u64("BENCH_MEASURE", 3_000);
    let iters = env_u64("BENCH_ITERS", 3).max(1);
    // Snapshot the baseline up front: the default BENCH_OUT below is the
    // baseline file itself, and the gate must not compare a run with its
    // own freshly written results.
    let enforcing = std::env::var("BENCH_ENFORCE").as_deref() == Ok("1");
    let baseline_path = std::env::var("BENCH_BASELINE").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cycle_kernel.json").into()
    });
    let baseline_text = enforcing
        .then(|| std::fs::read_to_string(&baseline_path).ok())
        .flatten();
    let sides: Vec<u16> = std::env::var("BENCH_SIDES")
        .unwrap_or_else(|_| "8,16".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let mut results = Vec::new();
    println!(
        "{:<8} {:<5} {:>6} {:>12} {:>10} {:>14} {:>10}",
        "topo", "point", "load", "sim cycles", "wall ms", "cycles/sec", "delivered"
    );
    for &side in &sides {
        for &(label, load) in &LOADS {
            let p = run_point(side, label, load, measure, iters, 1);
            println!(
                "{:<8} {:<5} {:>6.2} {:>12} {:>10.2} {:>14.0} {:>10}",
                format!("{side}x{side} torus"),
                p.label,
                p.load,
                p.sim_cycles,
                p.wall_s * 1e3,
                p.cycles_per_sec,
                p.delivered,
            );
            results.push(p);
        }
    }

    // Spatial sharding section: the same saturation workload on a large
    // torus, once per shard count. Deliveries are asserted identical —
    // the partitioning contract — so the rows differ only in wall time.
    let shard_side = env_u64("BENCH_SHARD_SIDE", 64) as u16;
    let shard_measure = env_u64("BENCH_SHARD_MEASURE", 500);
    let shard_counts: Vec<usize> = std::env::var("BENCH_SHARDS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let mut shard_delivered = None;
    for &n in &shard_counts {
        let p = run_point(shard_side, &format!("sat-s{n}"), 0.80, shard_measure, 1, n);
        let per_shard = p
            .shard_wall_ns
            .iter()
            .map(|&ns| format!("{:.1}", ns as f64 / 1e6))
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:<8} {:<5} {:>6.2} {:>12} {:>10.2} {:>14.0} {:>10}  shard ms {per_shard}",
            format!("{shard_side}x{shard_side} torus"),
            p.label,
            p.load,
            p.sim_cycles,
            p.wall_s * 1e3,
            p.cycles_per_sec,
            p.delivered,
        );
        let prev = shard_delivered.get_or_insert(p.delivered);
        assert_eq!(
            *prev, p.delivered,
            "sharded run diverged from the serial kernel at --shards {n}"
        );
        results.push(p);
    }

    let json = Value::obj(vec![
        ("bench", Value::from("cycle_kernel")),
        ("protocol", Value::from("clrp")),
        ("measure_cycles", Value::from(measure)),
        ("iters", Value::from(iters)),
        ("shard_measure_cycles", Value::from(shard_measure)),
        (
            "results",
            Value::Arr(
                results
                    .into_iter()
                    .map(|p| {
                        Value::obj(vec![
                            ("topology", Value::from(format!("{0}x{0}-torus", p.side))),
                            ("point", Value::from(p.label)),
                            ("load", Value::from(p.load)),
                            ("shards", Value::from(p.shards as u64)),
                            ("sim_cycles", Value::from(p.sim_cycles)),
                            ("wall_s", Value::from(p.wall_s)),
                            ("cycles_per_sec", Value::from(p.cycles_per_sec)),
                            ("delivered", Value::from(p.delivered)),
                            (
                                "shard_wall_ns",
                                Value::Arr(p.shard_wall_ns.into_iter().map(Value::from).collect()),
                            ),
                            ("kernel", p.kernel),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    // Default to the workspace root (cargo runs benches from the package
    // dir) so the tracked baseline sits beside ROADMAP.md.
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cycle_kernel.json").into()
    });
    std::fs::write(&out, json.pretty()).expect("write bench json");
    println!("wrote {out}");

    if enforcing {
        let Some(text) = baseline_text else {
            println!("no baseline at {baseline_path}; gate skipped");
            return;
        };
        let tolerance = env_u64("BENCH_TOLERANCE_PCT", 15) as f64;
        let gate_wall = std::env::var("BENCH_ENFORCE_WALL").as_deref() == Ok("1");
        let violations = enforce_baseline(&json, &text, tolerance, gate_wall);
        if !violations.is_empty() {
            eprintln!("cycle_kernel regression gate FAILED:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        println!("cycle_kernel regression gate passed (tolerance {tolerance}%)");
    }
}
