//! Microbenchmarks of the simulator substrate itself: event-calendar
//! throughput, wormhole fabric cycles/second, and probe establishment
//! cost. These guard the simulator's own performance (a slow simulator
//! caps the experiment scales everything else can afford).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_network::{Message, WormholeConfig, WormholeFabric};
use wavesim_sim::EventQueue;
use wavesim_topology::{NodeId, Topology};

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.schedule(i.wrapping_mul(2_654_435_761) % 65_536, i);
                }
                let mut sum = 0u64;
                while let Some(e) = q.pop() {
                    sum = sum.wrapping_add(e.event);
                }
                sum
            },
            BatchSize::SmallInput,
        );
    });
}

fn fabric_cycles(c: &mut Criterion) {
    c.bench_function("wormhole_fabric_8x8_1k_cycles_loaded", |b| {
        b.iter_batched(
            || {
                let mut f = WormholeFabric::new(Topology::mesh(&[8, 8]), WormholeConfig::default());
                for n in 0..64u32 {
                    f.inject(Message::new(
                        u64::from(n),
                        NodeId(n),
                        NodeId(63 - n.min(62)),
                        64,
                        0,
                    ));
                }
                f
            },
            |mut f| {
                for now in 0..1_000 {
                    f.tick(now);
                }
                f.stats().flit_hops
            },
            BatchSize::SmallInput,
        );
    });
}

fn circuit_setup(c: &mut Criterion) {
    c.bench_function("clrp_setup_and_transfer_8x8", |b| {
        b.iter_batched(
            || {
                WaveNetwork::new(
                    Topology::mesh(&[8, 8]),
                    WaveConfig {
                        protocol: ProtocolKind::Clrp,
                        ..WaveConfig::default()
                    },
                )
            },
            |mut net| {
                net.send(0, Message::new(1, NodeId(0), NodeId(63), 128, 0));
                let mut now = 0;
                while net.busy() && now < 10_000 {
                    net.tick(now);
                    now += 1;
                }
                now
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = event_queue_throughput, fabric_cycles, circuit_setup
}
criterion_main!(engine);
