//! Microbenchmarks of the simulator substrate itself: event-calendar
//! throughput, wormhole fabric cycles/second, and probe establishment
//! cost. These guard the simulator's own performance (a slow simulator
//! caps the experiment scales everything else can afford).
//!
//! Plain `harness = false` timing mains (the offline build has no bench
//! framework): each case reports min/median wall-clock over a fixed
//! number of iterations.

use std::time::Instant;

use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_network::{Message, WormholeConfig, WormholeFabric};
use wavesim_sim::EventQueue;
use wavesim_topology::{NodeId, Topology};

/// Times `iters` runs of `f` (with a fresh input from `setup` each run,
/// setup cost excluded) and prints min/median.
fn bench<T, R>(name: &str, iters: usize, mut setup: impl FnMut() -> T, mut f: impl FnMut(T) -> R) {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    println!(
        "{name:<44} min {:>10.3} ms   median {:>10.3} ms   ({iters} iters)",
        samples[0] as f64 / 1e6,
        samples[samples.len() / 2] as f64 / 1e6,
    );
}

fn main() {
    bench(
        "event_queue_push_pop_10k",
        20,
        EventQueue::<u64>::new,
        |mut q| {
            for i in 0..10_000u64 {
                q.schedule(i.wrapping_mul(2_654_435_761) % 65_536, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.event);
            }
            sum
        },
    );

    bench(
        "wormhole_fabric_8x8_1k_cycles_loaded",
        20,
        || {
            let mut f = WormholeFabric::new(Topology::mesh(&[8, 8]), WormholeConfig::default());
            for n in 0..64u32 {
                f.inject(Message::new(
                    u64::from(n),
                    NodeId(n),
                    NodeId(63 - n.min(62)),
                    64,
                    0,
                ));
            }
            f
        },
        |mut f| {
            for now in 0..1_000 {
                f.tick(now);
            }
            f.stats().flit_hops
        },
    );

    bench(
        "clrp_setup_and_transfer_8x8",
        20,
        || {
            WaveNetwork::new(
                Topology::mesh(&[8, 8]),
                WaveConfig {
                    protocol: ProtocolKind::Clrp,
                    ..WaveConfig::default()
                },
            )
        },
        |mut net| {
            net.send(0, Message::new(1, NodeId(0), NodeId(63), 128, 0));
            let mut now = 0;
            while net.busy() && now < 10_000 {
                net.tick(now);
                now += 1;
            }
            now
        },
    );
}
