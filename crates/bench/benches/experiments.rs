//! Benches, one per paper experiment (E1–E13).
//!
//! Each bench (a) regenerates the experiment's table at reduced scale and
//! prints it to stderr — so `cargo bench` reproduces every evaluation
//! series — and (b) measures the wall-clock cost of one representative
//! reduced-scale simulation, which is how we track simulator performance
//! regressions. Plain `harness = false` timing (the offline build has no
//! bench framework).

use std::time::Instant;

use wavesim_bench::{experiments, Scale};

fn bench_experiment(id: &str) {
    // Regenerate the series once per `cargo bench` invocation.
    for table in experiments::run_by_id(id, Scale::small()) {
        eprintln!("{}", table.render());
    }
    // Measure a single reduced-scale regeneration.
    let mut tiny = Scale::small();
    tiny.measure = 1_000;
    tiny.warmup = 200;
    tiny.sweep_points = 2;
    let iters = 10;
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            let tables = experiments::run_by_id(id, tiny);
            std::hint::black_box(tables.len());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    println!(
        "{id:<6} min {:>10.3} ms   median {:>10.3} ms   ({iters} iters)",
        samples[0] as f64 / 1e6,
        samples[samples.len() / 2] as f64 / 1e6,
    );
}

fn main() {
    for id in experiments::all_ids() {
        bench_experiment(id);
    }
}
