//! Criterion benches, one group per paper experiment (E1–E10).
//!
//! Each bench (a) regenerates the experiment's table at reduced scale and
//! prints it to stderr — so `cargo bench` reproduces every evaluation
//! series — and (b) measures the wall-clock cost of one representative
//! simulation, which is how we track simulator performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use wavesim_bench::{experiments, Scale};

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    // Regenerate the series once per `cargo bench` invocation.
    for table in experiments::run_by_id(id, Scale::small()) {
        eprintln!("{}", table.render());
    }
    // Criterion measures a single reduced-scale regeneration.
    let mut tiny = Scale::small();
    tiny.measure = 1_000;
    tiny.warmup = 200;
    tiny.sweep_points = 2;
    c.bench_function(id, |b| {
        b.iter(|| {
            let tables = experiments::run_by_id(id, tiny);
            std::hint::black_box(tables.len())
        });
    });
}

fn e1(c: &mut Criterion) {
    bench_experiment(c, "e1");
}
fn e2(c: &mut Criterion) {
    bench_experiment(c, "e2");
}
fn e3(c: &mut Criterion) {
    bench_experiment(c, "e3");
}
fn e4(c: &mut Criterion) {
    bench_experiment(c, "e4");
}
fn e5(c: &mut Criterion) {
    bench_experiment(c, "e5");
}
fn e6(c: &mut Criterion) {
    bench_experiment(c, "e6");
}
fn e7(c: &mut Criterion) {
    bench_experiment(c, "e7");
}
fn e8(c: &mut Criterion) {
    bench_experiment(c, "e8");
}
fn e9(c: &mut Criterion) {
    bench_experiment(c, "e9");
}
fn e10(c: &mut Criterion) {
    bench_experiment(c, "e10");
}
fn e11(c: &mut Criterion) {
    bench_experiment(c, "e11");
}
fn e12(c: &mut Criterion) {
    bench_experiment(c, "e12");
}
fn e13(c: &mut Criterion) {
    bench_experiment(c, "e13");
}

criterion_group! {
    name = paper_experiments;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13
}
criterion_main!(paper_experiments);
