//! Trace-capture overhead benchmark: the same 16×16 torus CLRP run five
//! ways — tracing disarmed, an in-memory [`wavesim_trace::VecSink`] (pure
//! hot-path emission cost), an inline [`wavesim_trace::ColumnarBuf`]
//! (emission + binary encode, synchronous on the sim thread), a
//! [`wavesim_trace::ColumnarSink`] streaming binary frames to disk, and a
//! [`wavesim_trace::JsonlSink`] streaming JSONL to disk.
//!
//! The production-observability contract is the binary path: *lossless,
//! always-on, <5 % overhead on a single core*. The inline columnar arm is
//! the enforceable measurement of that contract — it pays emission and
//! encoding synchronously with no writer thread, so the number means the
//! same thing on a 1-CPU runner as on a 64-core box (no overlap to
//! credit, no starvation to excuse). The streamed arms additionally pay
//! hand-off and I/O; on multi-core machines they should cost no more than
//! the inline arm.
//!
//! Plain `harness = false` timing main (the offline build has no bench
//! framework). Writes `BENCH_trace_stream.json` (override with
//! `BENCH_OUT`). Knobs: `BENCH_MEASURE` (measurement cycles, default
//! 3000), `BENCH_ITERS` (repeats, best wall taken, default 5).
//! `BENCH_ENFORCE=1` fails the run when:
//!
//! * the inline binary capture overhead exceeds `BENCH_MAX_OVERHEAD_PCT`
//!   (default 5) — enforced at **any** CPU count;
//! * the binary file exceeds 25 % of the JSONL file for the same run —
//!   byte counts are machine-independent;
//! * on ≥ 2 CPUs only: a *streamed* arm (binary or JSONL) exceeds the
//!   same overhead bound, since with one core the writer thread steals
//!   time from the simulation and the off-thread design cannot pay off
//!   (the JSON still records the measured single-core numbers).

use std::time::Instant;

use wavesim_bench::{run_open_loop, RunSpec};
use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_json::Value;
use wavesim_topology::Topology;
use wavesim_trace::{ColumnarBuf, ColumnarSink, JsonlSink, VecSink};
use wavesim_workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn make_net_and_src() -> (WaveNetwork, TrafficSource) {
    let topo = Topology::torus(&[16, 16]);
    let net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            ..WaveConfig::default()
        },
    );
    let src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.30,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.7,
            },
            len: LengthDist::Fixed(64),
            seed: 131,
            ..TrafficConfig::default()
        },
    );
    (net, src)
}

/// One plain (tracing disarmed) run; returns wall seconds.
fn run_plain(measure: u64) -> f64 {
    let (mut net, mut src) = make_net_and_src();
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "plain run stalled");
    wall
}

/// One run with an in-memory `VecSink`: the cost of emitting every record
/// on the hot path with no encoding or I/O behind it.
fn run_ring(measure: u64) -> f64 {
    let (mut net, mut src) = make_net_and_src();
    net.install_trace_sink(Box::new(VecSink::new()));
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "ring run stalled");
    wall
}

/// One run with an inline `ColumnarBuf`: emission plus binary encoding,
/// all synchronous on the simulation thread. This is the capture cost a
/// single-core deployment actually pays, minus only the file write.
fn run_bin_inline(measure: u64) -> f64 {
    let (mut net, mut src) = make_net_and_src();
    net.install_trace_sink(Box::new(ColumnarBuf::new()));
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "bin-inline run stalled");
    wall
}

/// One streamed run over `install`-provided sink plumbing: the timed
/// region includes sink teardown (`finish` drains the writer thread),
/// because a user pays that before the file is readable. Returns wall
/// seconds and the captured file size.
fn run_streamed(
    measure: u64,
    path: &std::path::Path,
    make_sink: impl FnOnce() -> Box<dyn wavesim_trace::TraceSink>,
) -> (f64, u64) {
    let (mut net, mut src) = make_net_and_src();
    net.install_trace_sink(make_sink());
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let mut sink = net.take_trace_sink().expect("sink installed");
    sink.finish().expect("stream flush");
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "streamed run stalled");
    let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
    (wall, bytes)
}

fn main() {
    let measure = env_u64("BENCH_MEASURE", 3_000);
    let iters = env_u64("BENCH_ITERS", 5).max(1);
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let jsonl_path = std::env::temp_dir().join("wavesim_bench_trace_stream.jsonl");
    let bin_path = std::env::temp_dir().join("wavesim_bench_trace_stream.wstrace");

    // Each traced arm is paired with its own plain run immediately before
    // it — adjacent runs see the same machine conditions, so transient
    // load on a shared runner inflates both sides of a pair instead of
    // poisoning one global baseline — and the tracked number is the
    // *median* ratio across iterations, robust to a noise spike landing
    // on either side of any single pair.
    fn median(samples: &mut [f64]) -> f64 {
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2.0
        }
    }

    let mut plain_best = f64::INFINITY;
    let mut ring_ratios = Vec::new();
    let mut bin_inline_ratios = Vec::new();
    let mut bin_stream_ratios = Vec::new();
    let mut jsonl_stream_ratios = Vec::new();
    let mut bin_inline_best = f64::INFINITY;
    let mut bin_stream_best = f64::INFINITY;
    let mut jsonl_stream_best = f64::INFINITY;
    let mut jsonl_bytes = 0u64;
    let mut bin_bytes = 0u64;
    for _ in 0..iters {
        let p = run_plain(measure);
        plain_best = plain_best.min(p);
        ring_ratios.push(run_ring(measure) / p);

        let p = run_plain(measure);
        plain_best = plain_best.min(p);
        let wall = run_bin_inline(measure);
        bin_inline_best = bin_inline_best.min(wall);
        bin_inline_ratios.push(wall / p);

        let p = run_plain(measure);
        plain_best = plain_best.min(p);
        let (wall, b) = run_streamed(measure, &bin_path, || {
            Box::new(ColumnarSink::create(&bin_path).expect("create bin stream"))
        });
        bin_stream_best = bin_stream_best.min(wall);
        bin_stream_ratios.push(wall / p);
        bin_bytes = b;

        let p = run_plain(measure);
        plain_best = plain_best.min(p);
        let (wall, b) = run_streamed(measure, &jsonl_path, || {
            Box::new(JsonlSink::create(&jsonl_path).expect("create jsonl stream"))
        });
        jsonl_stream_best = jsonl_stream_best.min(wall);
        jsonl_stream_ratios.push(wall / p);
        jsonl_bytes = b;
    }
    let _ = std::fs::remove_file(&jsonl_path);
    let _ = std::fs::remove_file(&bin_path);

    let pct = |ratio: f64| (ratio - 1.0) * 100.0;
    let emission_pct = pct(median(&mut ring_ratios));
    let capture_pct = pct(median(&mut bin_inline_ratios));
    let bin_stream_pct = pct(median(&mut bin_stream_ratios));
    let jsonl_stream_pct = pct(median(&mut jsonl_stream_ratios));
    let bytes_ratio_pct = if jsonl_bytes > 0 {
        bin_bytes as f64 / jsonl_bytes as f64 * 100.0
    } else {
        0.0
    };
    println!(
        "trace_stream: plain {:.2} ms | ring {emission_pct:+.2}% | \
         bin-inline {:.2} ms ({capture_pct:+.2}%) | bin-file {:.2} ms \
         ({bin_stream_pct:+.2}%, {bin_bytes} B) | jsonl-file {:.2} ms \
         ({jsonl_stream_pct:+.2}%, {jsonl_bytes} B) | bin/jsonl {bytes_ratio_pct:.1}% | {cpus} cpus",
        plain_best * 1e3,
        bin_inline_best * 1e3,
        bin_stream_best * 1e3,
        jsonl_stream_best * 1e3,
    );

    let json = Value::obj(vec![
        ("bench", Value::from("trace_stream")),
        ("topology", Value::from("16x16-torus")),
        ("protocol", Value::from("clrp")),
        ("load", Value::from(0.30)),
        ("measure_cycles", Value::from(measure)),
        ("iters", Value::from(iters)),
        ("cpus", Value::from(cpus as u64)),
        ("plain_wall_s", Value::from(plain_best)),
        ("bin_inline_wall_s", Value::from(bin_inline_best)),
        ("bin_stream_wall_s", Value::from(bin_stream_best)),
        ("jsonl_stream_wall_s", Value::from(jsonl_stream_best)),
        ("emission_overhead_pct", Value::from(emission_pct)),
        ("capture_overhead_pct", Value::from(capture_pct)),
        ("bin_stream_overhead_pct", Value::from(bin_stream_pct)),
        ("jsonl_stream_overhead_pct", Value::from(jsonl_stream_pct)),
        ("bin_bytes", Value::from(bin_bytes)),
        ("jsonl_bytes", Value::from(jsonl_bytes)),
        ("bytes_ratio_pct", Value::from(bytes_ratio_pct)),
    ]);
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace_stream.json").into()
    });
    std::fs::write(&out, json.pretty()).expect("write bench json");
    println!("wrote {out}");

    if std::env::var("BENCH_ENFORCE").as_deref() == Ok("1") {
        let max = env_u64("BENCH_MAX_OVERHEAD_PCT", 5) as f64;
        let mut failed = false;

        // Gate 1 (any CPU count): emission + binary encode on the sim
        // thread. This is the capture cost with no writer thread to hide
        // behind, so it is enforceable even on a 1-CPU runner.
        if capture_pct > max {
            eprintln!(
                "trace_stream capture gate FAILED: inline binary capture \
                 {capture_pct:.2}% > {max}% (emission+encode must stay production-cheap)"
            );
            failed = true;
        } else {
            println!("trace_stream capture gate passed ({capture_pct:.2}% <= {max}%)");
        }

        // Gate 2 (any CPU count): binary bytes at most 25% of JSONL bytes
        // for the identical run. Byte counts are machine-independent.
        if bin_bytes * 4 > jsonl_bytes {
            eprintln!(
                "trace_stream size gate FAILED: binary {bin_bytes} B > 25% of \
                 JSONL {jsonl_bytes} B"
            );
            failed = true;
        } else {
            println!(
                "trace_stream size gate passed (binary is {bytes_ratio_pct:.1}% of JSONL bytes)"
            );
        }

        // Gate 3 (≥2 CPUs): the streamed arms, whose writer thread needs
        // a core to overlap into.
        if cpus < 2 {
            println!(
                "trace_stream streamed gates skipped: 1 CPU — the writer thread \
                 cannot overlap the simulation thread (measured bin \
                 {bin_stream_pct:.2}%, jsonl {jsonl_stream_pct:.2}%)"
            );
        } else {
            for (name, p) in [("bin", bin_stream_pct), ("jsonl", jsonl_stream_pct)] {
                if p > max {
                    eprintln!(
                        "trace_stream streamed-{name} gate FAILED: {p:.2}% > {max}% \
                         (streaming capture must stay off the hot path)"
                    );
                    failed = true;
                } else {
                    println!("trace_stream streamed-{name} gate passed ({p:.2}% <= {max}%)");
                }
            }
        }

        if failed {
            std::process::exit(1);
        }
    }
}
