//! Streaming-capture overhead benchmark: the same 8×8 torus CLRP run
//! three ways — tracing disarmed, an in-memory [`wavesim_trace::VecSink`]
//! (pure hot-path emission cost), and a [`wavesim_trace::JsonlSink`]
//! streaming every record to disk. The streaming sink's contract is
//! *lossless and cheap*: records are chunked on the hot path and encoded
//! plus written by a dedicated writer thread, so on a machine with a
//! spare core the streamed run should cost barely more than emission
//! itself. The tracked number is the wall-clock overhead of the streamed
//! run over the disarmed one; the ring arm splits that overhead into
//! emission (paid on the sim thread regardless of sink) and writer work.
//!
//! Plain `harness = false` timing main (the offline build has no bench
//! framework). Writes `BENCH_trace_stream.json` (override with
//! `BENCH_OUT`). Knobs: `BENCH_MEASURE` (measurement cycles, default
//! 3000), `BENCH_ITERS` (repeats, best wall taken, default 5).
//! `BENCH_ENFORCE=1` fails the run when the streamed-vs-disarmed
//! overhead exceeds `BENCH_MAX_OVERHEAD_PCT` (default 5). Both arms run
//! back to back on the same machine, so unlike raw wall-clock gates the
//! ratio is meaningful on shared CI runners — but the gate needs at
//! least two CPUs: with one core the writer thread's encode and I/O
//! steal time from the simulation thread and the off-thread design
//! cannot pay off, so the gate reports itself skipped (the JSON still
//! records the measured overhead and the CPU count).

use std::time::Instant;

use wavesim_bench::{run_open_loop, RunSpec};
use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_json::Value;
use wavesim_topology::Topology;
use wavesim_trace::{JsonlSink, VecSink};
use wavesim_workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn make_net_and_src() -> (WaveNetwork, TrafficSource) {
    let topo = Topology::torus(&[8, 8]);
    let net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            ..WaveConfig::default()
        },
    );
    let src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.30,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.7,
            },
            len: LengthDist::Fixed(64),
            seed: 131,
            ..TrafficConfig::default()
        },
    );
    (net, src)
}

/// One plain (tracing disarmed) run; returns wall seconds.
fn run_plain(measure: u64) -> f64 {
    let (mut net, mut src) = make_net_and_src();
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "plain run stalled");
    wall
}

/// One run with an in-memory `VecSink`: the cost of emitting every record
/// on the hot path with no encoding or I/O behind it.
fn run_ring(measure: u64) -> f64 {
    let (mut net, mut src) = make_net_and_src();
    net.install_trace_sink(Box::new(VecSink::new()));
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "ring run stalled");
    wall
}

/// One streamed run: a `JsonlSink` on `path` captures every record. The
/// timed region includes sink teardown (`finish` drains the writer
/// thread), because a user pays that before the file is readable.
fn run_streamed(measure: u64, path: &std::path::Path) -> (f64, u64) {
    let (mut net, mut src) = make_net_and_src();
    let sink = JsonlSink::create(path).expect("create stream file");
    net.install_trace_sink(Box::new(sink));
    let t0 = Instant::now();
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(measure / 8, measure));
    let mut sink = net.take_trace_sink().expect("sink installed");
    sink.finish().expect("stream flush");
    let wall = t0.elapsed().as_secs_f64();
    assert!(!r.stalled, "streamed run stalled");
    let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
    (wall, bytes)
}

fn main() {
    let measure = env_u64("BENCH_MEASURE", 3_000);
    let iters = env_u64("BENCH_ITERS", 5).max(1);
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let path = std::env::temp_dir().join("wavesim_bench_trace_stream.jsonl");

    let mut plain_best = f64::INFINITY;
    let mut ring_best = f64::INFINITY;
    let mut stream_best = f64::INFINITY;
    let mut bytes = 0u64;
    for _ in 0..iters {
        plain_best = plain_best.min(run_plain(measure));
        ring_best = ring_best.min(run_ring(measure));
        let (wall, b) = run_streamed(measure, &path);
        stream_best = stream_best.min(wall);
        bytes = b;
    }
    let _ = std::fs::remove_file(&path);
    let overhead_pct = (stream_best / plain_best - 1.0) * 100.0;
    let emission_pct = (ring_best / plain_best - 1.0) * 100.0;
    println!(
        "trace_stream: plain {:.2} ms, ring {:.2} ms ({:+.2}%), streamed {:.2} ms \
         ({:+.2}% overhead, {} JSONL bytes, {cpus} cpus)",
        plain_best * 1e3,
        ring_best * 1e3,
        emission_pct,
        stream_best * 1e3,
        overhead_pct,
        bytes
    );

    let json = Value::obj(vec![
        ("bench", Value::from("trace_stream")),
        ("topology", Value::from("8x8-torus")),
        ("protocol", Value::from("clrp")),
        ("load", Value::from(0.30)),
        ("measure_cycles", Value::from(measure)),
        ("iters", Value::from(iters)),
        ("cpus", Value::from(cpus as u64)),
        ("plain_wall_s", Value::from(plain_best)),
        ("ring_wall_s", Value::from(ring_best)),
        ("stream_wall_s", Value::from(stream_best)),
        ("emission_overhead_pct", Value::from(emission_pct)),
        ("overhead_pct", Value::from(overhead_pct)),
        ("jsonl_bytes", Value::from(bytes)),
    ]);
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace_stream.json").into()
    });
    std::fs::write(&out, json.pretty()).expect("write bench json");
    println!("wrote {out}");

    if std::env::var("BENCH_ENFORCE").as_deref() == Ok("1") {
        if cpus < 2 {
            println!(
                "trace_stream overhead gate skipped: 1 CPU — the writer thread \
                 cannot overlap the simulation thread, so the measured \
                 {overhead_pct:.2}% includes the full encode+write cost"
            );
            return;
        }
        let max = env_u64("BENCH_MAX_OVERHEAD_PCT", 5) as f64;
        if overhead_pct > max {
            eprintln!(
                "trace_stream overhead gate FAILED: {overhead_pct:.2}% > {max}% \
                 (streaming capture must stay off the hot path)"
            );
            std::process::exit(1);
        }
        println!("trace_stream overhead gate passed ({overhead_pct:.2}% <= {max}%)");
    }
}
