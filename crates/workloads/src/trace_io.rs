//! Trace persistence: save/load CARP instruction traces and message
//! scripts as JSON, so experiment inputs are shareable, versionable
//! artifacts (and so a future real compiler could emit them directly —
//! the interface §3.2 defines is exactly this instruction stream).

use std::io::{Read, Write};

use wavesim_json::Value;
use wavesim_network::Message;
use wavesim_sim::Cycle;
use wavesim_topology::NodeId;

use wavesim_topology::LinkId;

use crate::carp::{CarpOp, CarpTrace};
use crate::deptrace::{DepMessage, DepTrace};
use crate::faults::{FaultPlan, FaultSchedule, FaultScheduleEvent};

const VERSION: u64 = 1;

fn message_to_json(m: &Message) -> Value {
    Value::obj(vec![
        ("id", m.id.0.into()),
        ("src", u64::from(m.src.0).into()),
        ("dest", u64::from(m.dest.0).into()),
        ("len", m.len_flits.into()),
        ("created", m.created_at.into()),
    ])
}

fn message_from_json(v: &Value) -> Result<Message, String> {
    let field = |k: &str| v[k].as_u64().ok_or_else(|| format!("message missing {k}"));
    let src = field("src")? as u32;
    let dest = field("dest")? as u32;
    let len = field("len")? as u32;
    if len == 0 {
        return Err("message length must be >= 1".into());
    }
    if src == dest {
        return Err("self-send in trace".into());
    }
    Ok(Message::new(
        field("id")?,
        NodeId(src),
        NodeId(dest),
        len,
        field("created")?,
    ))
}

fn op_to_json(op: &CarpOp) -> Value {
    match op {
        CarpOp::Establish { src, dest } => Value::obj(vec![
            ("op", "establish".into()),
            ("src", u64::from(src.0).into()),
            ("dest", u64::from(dest.0).into()),
        ]),
        CarpOp::Send(m) => Value::obj(vec![("op", "send".into()), ("msg", message_to_json(m))]),
        CarpOp::Teardown { src, dest } => Value::obj(vec![
            ("op", "teardown".into()),
            ("src", u64::from(src.0).into()),
            ("dest", u64::from(dest.0).into()),
        ]),
    }
}

fn op_from_json(v: &Value) -> Result<CarpOp, String> {
    let endpoints = || -> Result<(NodeId, NodeId), String> {
        let src = v["src"].as_u64().ok_or("op missing src")? as u32;
        let dest = v["dest"].as_u64().ok_or("op missing dest")? as u32;
        Ok((NodeId(src), NodeId(dest)))
    };
    match v["op"].as_str() {
        Some("establish") => {
            let (src, dest) = endpoints()?;
            Ok(CarpOp::Establish { src, dest })
        }
        Some("teardown") => {
            let (src, dest) = endpoints()?;
            Ok(CarpOp::Teardown { src, dest })
        }
        Some("send") => Ok(CarpOp::Send(message_from_json(&v["msg"])?)),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn timed_to_json<T>(items: &[(Cycle, T)], encode: impl Fn(&T) -> Value) -> Value {
    Value::Arr(
        items
            .iter()
            .map(|(t, x)| Value::Arr(vec![(*t).into(), encode(x)]))
            .collect(),
    )
}

fn timed_from_json<T>(
    v: &Value,
    what: &str,
    decode: impl Fn(&Value) -> Result<T, String>,
) -> Result<Vec<(Cycle, T)>, String> {
    let items = v
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pair = item
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("each {what} entry must be a [cycle, value] pair"))?;
        let t = pair[0]
            .as_u64()
            .ok_or_else(|| format!("bad {what} cycle"))?;
        out.push((t, decode(&pair[1])?));
    }
    Ok(out)
}

/// Serializes `trace` as pretty JSON.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_trace<W: Write>(trace: &CarpTrace, mut writer: W) -> std::io::Result<()> {
    let file = Value::obj(vec![
        ("version", VERSION.into()),
        ("ops", timed_to_json(&trace.ops, op_to_json)),
    ]);
    writer.write_all(file.pretty().as_bytes())
}

/// Deserializes a trace saved by [`save_trace`].
///
/// # Errors
/// Fails on malformed JSON, an unknown version, or a time-unsorted stream.
pub fn load_trace<R: Read>(mut reader: R) -> Result<CarpTrace, String> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| format!("read failed: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("malformed trace: {e}"))?;
    let version = v["version"].as_u64().ok_or("malformed trace: no version")?;
    if version != VERSION {
        return Err(format!(
            "unsupported trace version {version} (expected {VERSION})"
        ));
    }
    let ops = timed_from_json(&v["ops"], "trace op", op_from_json)?;
    if !ops.windows(2).all(|w| w[0].0 <= w[1].0) {
        return Err("trace ops are not time-sorted".into());
    }
    Ok(CarpTrace { ops })
}

/// Serializes a timed message script (as used by scripted experiments).
///
/// # Errors
/// Propagates I/O errors.
pub fn save_script<W: Write>(script: &[(Cycle, Message)], mut writer: W) -> std::io::Result<()> {
    writer.write_all(timed_to_json(script, message_to_json).pretty().as_bytes())
}

/// Deserializes a message script saved by [`save_script`].
///
/// # Errors
/// Fails on malformed JSON or a time-unsorted script.
pub fn load_script<R: Read>(mut reader: R) -> Result<Vec<(Cycle, Message)>, String> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| format!("read failed: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("malformed script: {e}"))?;
    let script = timed_from_json(&v, "script", message_from_json)?;
    if !script.windows(2).all(|w| w[0].0 <= w[1].0) {
        return Err("script is not time-sorted".into());
    }
    Ok(script)
}

fn dep_message_to_json(m: &DepMessage) -> Value {
    let mut pairs = vec![
        ("id", m.msg.id.0.into()),
        ("src", u64::from(m.msg.src.0).into()),
        ("dest", u64::from(m.msg.dest.0).into()),
        ("len", m.msg.len_flits.into()),
        ("created", m.msg.created_at.into()),
    ];
    if !m.deps.is_empty() {
        pairs.push((
            "deps",
            Value::Arr(m.deps.iter().map(|&d| d.into()).collect()),
        ));
    }
    Value::obj(pairs)
}

fn dep_message_from_json(v: &Value) -> Result<DepMessage, String> {
    let msg = message_from_json(v)?;
    let deps = match &v["deps"] {
        Value::Null => Vec::new(),
        d => {
            let items = d.as_array().ok_or("deps must be an array")?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(item.as_u64().ok_or("deps entries must be message ids")?);
            }
            out
        }
    };
    Ok(DepMessage { msg, deps })
}

/// Serializes a dependency trace as one pretty JSON document
/// (`{"version": 1, "messages": [{id, src, dest, len, created,
/// deps?}, ...]}`; a missing `deps` key means no dependencies).
///
/// # Errors
/// Propagates I/O errors.
pub fn save_dep_trace<W: Write>(trace: &DepTrace, mut writer: W) -> std::io::Result<()> {
    let file = Value::obj(vec![
        ("version", VERSION.into()),
        (
            "messages",
            Value::Arr(trace.messages.iter().map(dep_message_to_json).collect()),
        ),
    ]);
    writer.write_all(file.pretty().as_bytes())
}

/// Serializes a dependency trace as JSONL: a `{"version": 1}` header
/// line, then one compact message object per line — the format to use
/// when traces are large or emitted by a streaming producer.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_dep_trace_jsonl<W: Write>(trace: &DepTrace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{{\"version\": {VERSION}}}")?;
    for m in &trace.messages {
        writeln!(writer, "{}", dep_message_to_json(m).compact())?;
    }
    Ok(())
}

/// Deserializes a dependency trace saved by [`save_dep_trace`] (one JSON
/// document) **or** [`save_dep_trace_jsonl`] (header line + one message
/// per line); the format is sniffed from the content. The loaded trace is
/// fully validated — unknown or duplicate ids and **cyclic dependency
/// graphs are rejected here**, at load time, because a cyclic trace can
/// never finish replaying.
///
/// # Errors
/// Fails on malformed JSON, an unknown version, an invalid message
/// (zero length, self-send), or a broken dependency graph.
pub fn load_dep_trace<R: Read>(mut reader: R) -> Result<DepTrace, String> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| format!("read failed: {e}"))?;
    let check_version = |v: &Value| -> Result<(), String> {
        let version = v["version"]
            .as_u64()
            .ok_or("malformed dependency trace: no version")?;
        if version == VERSION {
            Ok(())
        } else {
            Err(format!(
                "unsupported dependency trace version {version} (expected {VERSION})"
            ))
        }
    };
    let messages = if let Ok(doc) = Value::parse(&text) {
        // Whole-document form: {"version", "messages": [...]}. A bare
        // {"version"} (a JSONL header with no message lines) is an empty
        // trace.
        check_version(&doc)?;
        match &doc["messages"] {
            Value::Null => Vec::new(),
            m => {
                let items = m.as_array().ok_or("messages must be an array")?;
                items
                    .iter()
                    .map(dep_message_from_json)
                    .collect::<Result<Vec<_>, _>>()?
            }
        }
    } else {
        // JSONL form: header line, then one message object per line.
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty dependency trace")?;
        let hv =
            Value::parse(header).map_err(|e| format!("malformed dependency trace header: {e}"))?;
        check_version(&hv)?;
        let mut out = Vec::new();
        for (i, line) in lines.enumerate() {
            let v =
                Value::parse(line).map_err(|e| format!("malformed trace line {}: {e}", i + 2))?;
            out.push(dep_message_from_json(&v)?);
        }
        out
    };
    DepTrace::new(messages)
}

/// Serializes a fault plan as pretty JSON
/// (`{"version": 1, "lanes": [[link, switch], ...]}`).
///
/// # Errors
/// Propagates I/O errors.
pub fn save_fault_plan<W: Write>(plan: &FaultPlan, mut writer: W) -> std::io::Result<()> {
    let lanes: Vec<Value> = plan
        .lanes
        .iter()
        .map(|(l, s)| Value::Arr(vec![u64::from(l.0).into(), u64::from(*s).into()]))
        .collect();
    let file = Value::obj(vec![
        ("version", VERSION.into()),
        ("lanes", Value::Arr(lanes)),
    ]);
    writer.write_all(file.pretty().as_bytes())
}

/// Deserializes a fault plan saved by [`save_fault_plan`].
///
/// # Errors
/// Fails on malformed JSON, an unknown version, or an invalid lane
/// (switch indices are 1-based and must fit in a `u8`).
pub fn load_fault_plan<R: Read>(mut reader: R) -> Result<FaultPlan, String> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| format!("read failed: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("malformed fault plan: {e}"))?;
    let version = v["version"]
        .as_u64()
        .ok_or("malformed fault plan: no version")?;
    if version != VERSION {
        return Err(format!(
            "unsupported fault plan version {version} (expected {VERSION})"
        ));
    }
    let entries = v["lanes"]
        .as_array()
        .ok_or("fault plan lanes must be an array")?;
    let mut lanes = Vec::with_capacity(entries.len());
    for item in entries {
        let pair = item
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or("each lane must be a [link, switch] pair")?;
        let link = pair[0].as_u64().ok_or("bad lane link")? as u32;
        let switch = pair[1]
            .as_u64()
            .filter(|&s| (1..=u64::from(u8::MAX)).contains(&s))
            .ok_or("lane switch must be in 1..=255")? as u8;
        lanes.push((LinkId(link), switch));
    }
    Ok(FaultPlan { lanes })
}

fn schedule_event_to_json(ev: &FaultScheduleEvent) -> Value {
    let (op, link, switch) = match *ev {
        FaultScheduleEvent::FailLane(l, s) => ("fail", l, Some(s)),
        FaultScheduleEvent::RepairLane(l, s) => ("repair", l, Some(s)),
        FaultScheduleEvent::FailLink(l) => ("fail", l, None),
        FaultScheduleEvent::RepairLink(l) => ("repair", l, None),
    };
    let mut pairs: Vec<(&str, Value)> = vec![("op", op.into()), ("link", u64::from(link.0).into())];
    if let Some(s) = switch {
        pairs.push(("switch", u64::from(s).into()));
    }
    Value::obj(pairs)
}

fn schedule_event_from_json(v: &Value) -> Result<FaultScheduleEvent, String> {
    let link = LinkId(v["link"].as_u64().ok_or("fault event missing link")? as u32);
    let switch = match &v["switch"] {
        Value::Null => None,
        s => Some(
            s.as_u64()
                .filter(|&s| (1..=u64::from(u8::MAX)).contains(&s))
                .ok_or("fault event switch must be in 1..=255")? as u8,
        ),
    };
    match (v["op"].as_str(), switch) {
        (Some("fail"), Some(s)) => Ok(FaultScheduleEvent::FailLane(link, s)),
        (Some("repair"), Some(s)) => Ok(FaultScheduleEvent::RepairLane(link, s)),
        (Some("fail"), None) => Ok(FaultScheduleEvent::FailLink(link)),
        (Some("repair"), None) => Ok(FaultScheduleEvent::RepairLink(link)),
        (other, _) => Err(format!("unknown fault op {other:?}")),
    }
}

/// Serializes a dynamic fault schedule as pretty JSON
/// (`{"version": 1, "events": [[cycle, {"op", "link", "switch"?}], ...]}`;
/// no `"switch"` key means the whole link).
///
/// # Errors
/// Propagates I/O errors.
pub fn save_fault_schedule<W: Write>(
    schedule: &FaultSchedule,
    mut writer: W,
) -> std::io::Result<()> {
    let file = Value::obj(vec![
        ("version", VERSION.into()),
        (
            "events",
            timed_to_json(&schedule.events, schedule_event_to_json),
        ),
    ]);
    writer.write_all(file.pretty().as_bytes())
}

/// Deserializes a fault schedule saved by [`save_fault_schedule`].
///
/// # Errors
/// Fails on malformed JSON, an unknown version, a bad event, or a
/// time-unsorted schedule. Topology fit is checked separately with
/// [`FaultSchedule::validate`] (the file does not name its topology).
pub fn load_fault_schedule<R: Read>(mut reader: R) -> Result<FaultSchedule, String> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| format!("read failed: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("malformed fault schedule: {e}"))?;
    let version = v["version"]
        .as_u64()
        .ok_or("malformed fault schedule: no version")?;
    if version != VERSION {
        return Err(format!(
            "unsupported fault schedule version {version} (expected {VERSION})"
        ));
    }
    let events = timed_from_json(&v["events"], "fault event", schedule_event_from_json)?;
    if !events.windows(2).all(|w| w[0].0 <= w[1].0) {
        return Err("fault schedule is not time-sorted".into());
    }
    Ok(FaultSchedule { events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::Topology;

    #[test]
    fn trace_roundtrip() {
        let topo = Topology::mesh(&[4, 4]);
        let trace = CarpTrace::stencil(&topo, 2, 3, 32, 1000, 100);
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let loaded = load_trace(buf.as_slice()).unwrap();
        assert_eq!(loaded.ops, trace.ops);
    }

    #[test]
    fn script_roundtrip() {
        let script = vec![
            (0u64, Message::new(1, NodeId(0), NodeId(5), 16, 0)),
            (10, Message::new(2, NodeId(3), NodeId(7), 64, 10)),
        ];
        let mut buf = Vec::new();
        save_script(&script, &mut buf).unwrap();
        let loaded = load_script(buf.as_slice()).unwrap();
        assert_eq!(loaded, script);
    }

    #[test]
    fn version_mismatch_rejected() {
        let json = r#"{"version": 99, "ops": []}"#;
        let err = load_trace(json.as_bytes()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn unsorted_trace_rejected() {
        let topo = Topology::mesh(&[4, 4]);
        let mut trace = CarpTrace::stencil(&topo, 1, 2, 8, 100, 10);
        let last = trace.ops.len() - 1;
        trace.ops.swap(0, last);
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let err = load_trace(buf.as_slice()).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        assert!(load_trace(&b"not json"[..]).is_err());
        assert!(load_script(&b"{}"[..]).is_err());
    }

    #[test]
    fn fault_plan_roundtrip() {
        let topo = Topology::mesh(&[8, 8]);
        let plan = FaultPlan::random_lanes(&topo, 2, 0.2, 5);
        assert!(!plan.is_empty());
        let mut buf = Vec::new();
        save_fault_plan(&plan, &mut buf).unwrap();
        let loaded = load_fault_plan(buf.as_slice()).unwrap();
        assert_eq!(loaded, plan);
    }

    #[test]
    fn saved_artifacts_are_byte_stable() {
        // save -> load -> save must be byte-identical for every artifact
        // kind, so saved files are canonical and diffable.
        let topo = Topology::mesh(&[4, 4]);

        let trace = CarpTrace::stencil(&topo, 2, 3, 32, 1000, 100);
        let mut first = Vec::new();
        save_trace(&trace, &mut first).unwrap();
        let mut second = Vec::new();
        save_trace(&load_trace(first.as_slice()).unwrap(), &mut second).unwrap();
        assert_eq!(first, second);

        let script = vec![
            (0u64, Message::new(1, NodeId(0), NodeId(5), 16, 0)),
            (10, Message::new(2, NodeId(3), NodeId(7), 64, 10)),
        ];
        let mut first = Vec::new();
        save_script(&script, &mut first).unwrap();
        let mut second = Vec::new();
        save_script(&load_script(first.as_slice()).unwrap(), &mut second).unwrap();
        assert_eq!(first, second);

        let plan = FaultPlan::random_lanes(&topo, 3, 0.3, 9);
        let mut first = Vec::new();
        save_fault_plan(&plan, &mut first).unwrap();
        let mut second = Vec::new();
        save_fault_plan(&load_fault_plan(first.as_slice()).unwrap(), &mut second).unwrap();
        assert_eq!(first, second);

        let sched = FaultSchedule::random_mtbf(&topo, 800, 200, 5_000, 9);
        assert!(!sched.is_empty());
        let mut first = Vec::new();
        save_fault_schedule(&sched, &mut first).unwrap();
        let mut second = Vec::new();
        save_fault_schedule(&load_fault_schedule(first.as_slice()).unwrap(), &mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn fault_schedule_roundtrip_covers_all_variants() {
        let link = LinkId(4);
        let sched = FaultSchedule {
            events: vec![
                (1, FaultScheduleEvent::FailLane(link, 2)),
                (3, FaultScheduleEvent::FailLink(LinkId(9))),
                (7, FaultScheduleEvent::RepairLane(link, 2)),
                (9, FaultScheduleEvent::RepairLink(LinkId(9))),
            ],
        };
        let mut buf = Vec::new();
        save_fault_schedule(&sched, &mut buf).unwrap();
        let loaded = load_fault_schedule(buf.as_slice()).unwrap();
        assert_eq!(loaded, sched);
    }

    #[test]
    fn malformed_fault_schedules_rejected_not_panicking() {
        assert!(load_fault_schedule(&b"not json"[..]).is_err());
        assert!(load_fault_schedule(&b"{}"[..]).is_err());
        let bad_version = r#"{"version": 9, "events": []}"#;
        assert!(load_fault_schedule(bad_version.as_bytes())
            .unwrap_err()
            .contains("version"));
        let bad_op = r#"{"version": 1, "events": [[0, {"op": "explode", "link": 1}]]}"#;
        assert!(load_fault_schedule(bad_op.as_bytes())
            .unwrap_err()
            .contains("unknown fault op"));
        let zero_switch =
            r#"{"version": 1, "events": [[0, {"op": "fail", "link": 1, "switch": 0}]]}"#;
        assert!(load_fault_schedule(zero_switch.as_bytes()).is_err());
        let unsorted = concat!(
            r#"{"version": 1, "events": [[9, {"op": "fail", "link": 1}],"#,
            r#" [2, {"op": "repair", "link": 1}]]}"#
        );
        assert!(load_fault_schedule(unsorted.as_bytes())
            .unwrap_err()
            .contains("sorted"));
    }

    #[test]
    fn malformed_fault_plans_rejected_not_panicking() {
        assert!(load_fault_plan(&b"not json"[..]).is_err());
        assert!(load_fault_plan(&b"{}"[..]).is_err());
        let bad_version = r#"{"version": 9, "lanes": []}"#;
        assert!(load_fault_plan(bad_version.as_bytes())
            .unwrap_err()
            .contains("version"));
        // Switch 0 would trip LaneId::new's 1-based assertion downstream;
        // it must be a load error here instead.
        let zero_switch = r#"{"version": 1, "lanes": [[3, 0]]}"#;
        assert!(load_fault_plan(zero_switch.as_bytes()).is_err());
        let wide_switch = r#"{"version": 1, "lanes": [[3, 300]]}"#;
        assert!(load_fault_plan(wide_switch.as_bytes()).is_err());
        let not_a_pair = r#"{"version": 1, "lanes": [[3]]}"#;
        assert!(load_fault_plan(not_a_pair.as_bytes()).is_err());
    }

    fn diamond() -> DepTrace {
        DepTrace::new(vec![
            DepMessage {
                msg: Message::new(0, NodeId(0), NodeId(3), 8, 0),
                deps: vec![],
            },
            DepMessage {
                msg: Message::new(1, NodeId(3), NodeId(1), 8, 0),
                deps: vec![0],
            },
            DepMessage {
                msg: Message::new(2, NodeId(3), NodeId(2), 8, 0),
                deps: vec![0],
            },
            DepMessage {
                msg: Message::new(3, NodeId(1), NodeId(0), 8, 5),
                deps: vec![1, 2],
            },
        ])
        .unwrap()
    }

    #[test]
    fn dep_trace_roundtrips_in_both_formats() {
        let trace = diamond();
        let mut doc = Vec::new();
        save_dep_trace(&trace, &mut doc).unwrap();
        assert_eq!(load_dep_trace(doc.as_slice()).unwrap(), trace);

        let mut jsonl = Vec::new();
        save_dep_trace_jsonl(&trace, &mut jsonl).unwrap();
        assert_eq!(load_dep_trace(jsonl.as_slice()).unwrap(), trace);

        // save -> load -> save is byte-stable in both formats.
        let mut doc2 = Vec::new();
        save_dep_trace(&load_dep_trace(doc.as_slice()).unwrap(), &mut doc2).unwrap();
        assert_eq!(doc, doc2);
        let mut jsonl2 = Vec::new();
        save_dep_trace_jsonl(&load_dep_trace(jsonl.as_slice()).unwrap(), &mut jsonl2).unwrap();
        assert_eq!(jsonl, jsonl2);
    }

    #[test]
    fn cyclic_dep_trace_rejected_at_load() {
        let cyclic = concat!(
            r#"{"version": 1, "messages": ["#,
            r#"{"id":0,"src":0,"dest":1,"len":4,"created":0,"deps":[1]},"#,
            r#"{"id":1,"src":1,"dest":2,"len":4,"created":0,"deps":[0]}]}"#
        );
        let err = load_dep_trace(cyclic.as_bytes()).unwrap_err();
        assert!(err.contains("cyclic"), "{err}");
    }

    #[test]
    fn malformed_dep_traces_rejected_not_panicking() {
        assert!(load_dep_trace(&b""[..]).is_err());
        assert!(load_dep_trace(&b"not json"[..]).is_err());
        assert!(load_dep_trace(&b"{}"[..]).is_err());
        let bad_version = r#"{"version": 9, "messages": []}"#;
        assert!(load_dep_trace(bad_version.as_bytes())
            .unwrap_err()
            .contains("version"));
        let unknown_dep = r#"{"version": 1, "messages": [{"id":0,"src":0,"dest":1,"len":4,"created":0,"deps":[7]}]}"#;
        assert!(load_dep_trace(unknown_dep.as_bytes())
            .unwrap_err()
            .contains("unknown"));
        let dup = r#"{"version": 1, "messages": [{"id":0,"src":0,"dest":1,"len":4,"created":0},{"id":0,"src":1,"dest":2,"len":4,"created":0}]}"#;
        assert!(load_dep_trace(dup.as_bytes())
            .unwrap_err()
            .contains("duplicate"));
        let self_send =
            r#"{"version": 1, "messages": [{"id":0,"src":3,"dest":3,"len":4,"created":0}]}"#;
        assert!(load_dep_trace(self_send.as_bytes()).is_err());
        // A bare JSONL header is an empty trace; a bad body line errors.
        assert!(load_dep_trace(&b"{\"version\": 1}"[..]).unwrap().is_empty());
        let bad_line = "{\"version\": 1}\nnot json\n";
        assert!(load_dep_trace(bad_line.as_bytes())
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn hostile_values_rejected_not_panicking() {
        // Zero-length and self-send messages must be load errors, not
        // assertion failures inside Message::new.
        let zero_len = r#"[[0, {"id":1,"src":0,"dest":1,"len":0,"created":0}]]"#;
        assert!(load_script(zero_len.as_bytes()).is_err());
        let self_send = r#"[[0, {"id":1,"src":3,"dest":3,"len":4,"created":0}]]"#;
        assert!(load_script(self_send.as_bytes()).is_err());
    }
}
