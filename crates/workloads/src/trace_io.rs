//! Trace persistence: save/load CARP instruction traces and message
//! scripts as JSON, so experiment inputs are shareable, versionable
//! artifacts (and so a future real compiler could emit them directly —
//! the interface §3.2 defines is exactly this instruction stream).

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
use wavesim_network::Message;
use wavesim_sim::Cycle;

use crate::carp::{CarpOp, CarpTrace};

/// Versioned on-disk form of a CARP trace.
#[derive(Debug, Serialize, Deserialize)]
struct TraceFile {
    /// Format version (bump on breaking change).
    version: u32,
    /// The instruction stream.
    ops: Vec<(Cycle, CarpOp)>,
}

const VERSION: u32 = 1;

/// Serializes `trace` as pretty JSON.
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn save_trace<W: Write>(trace: &CarpTrace, writer: W) -> Result<(), serde_json::Error> {
    let file = TraceFile {
        version: VERSION,
        ops: trace.ops.clone(),
    };
    serde_json::to_writer_pretty(writer, &file)
}

/// Deserializes a trace saved by [`save_trace`].
///
/// # Errors
/// Fails on malformed JSON, an unknown version, or a time-unsorted stream.
pub fn load_trace<R: Read>(reader: R) -> Result<CarpTrace, String> {
    let file: TraceFile =
        serde_json::from_reader(reader).map_err(|e| format!("malformed trace: {e}"))?;
    if file.version != VERSION {
        return Err(format!(
            "unsupported trace version {} (expected {VERSION})",
            file.version
        ));
    }
    if !file.ops.windows(2).all(|w| w[0].0 <= w[1].0) {
        return Err("trace ops are not time-sorted".into());
    }
    Ok(CarpTrace { ops: file.ops })
}

/// Serializes a timed message script (as used by scripted experiments).
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn save_script<W: Write>(
    script: &[(Cycle, Message)],
    writer: W,
) -> Result<(), serde_json::Error> {
    serde_json::to_writer_pretty(writer, script)
}

/// Deserializes a message script saved by [`save_script`].
///
/// # Errors
/// Fails on malformed JSON or a time-unsorted script.
pub fn load_script<R: Read>(reader: R) -> Result<Vec<(Cycle, Message)>, String> {
    let script: Vec<(Cycle, Message)> =
        serde_json::from_reader(reader).map_err(|e| format!("malformed script: {e}"))?;
    if !script.windows(2).all(|w| w[0].0 <= w[1].0) {
        return Err("script is not time-sorted".into());
    }
    Ok(script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::{NodeId, Topology};

    #[test]
    fn trace_roundtrip() {
        let topo = Topology::mesh(&[4, 4]);
        let trace = CarpTrace::stencil(&topo, 2, 3, 32, 1000, 100);
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let loaded = load_trace(buf.as_slice()).unwrap();
        assert_eq!(loaded.ops, trace.ops);
    }

    #[test]
    fn script_roundtrip() {
        let script = vec![
            (0u64, Message::new(1, NodeId(0), NodeId(5), 16, 0)),
            (10, Message::new(2, NodeId(3), NodeId(7), 64, 10)),
        ];
        let mut buf = Vec::new();
        save_script(&script, &mut buf).unwrap();
        let loaded = load_script(buf.as_slice()).unwrap();
        assert_eq!(loaded, script);
    }

    #[test]
    fn version_mismatch_rejected() {
        let json = r#"{"version": 99, "ops": []}"#;
        let err = load_trace(json.as_bytes()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn unsorted_trace_rejected() {
        let topo = Topology::mesh(&[4, 4]);
        let mut trace = CarpTrace::stencil(&topo, 1, 2, 8, 100, 10);
        let last = trace.ops.len() - 1;
        trace.ops.swap(0, last);
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let err = load_trace(buf.as_slice()).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        assert!(load_trace(&b"not json"[..]).is_err());
        assert!(load_script(&b"{}"[..]).is_err());
    }
}
