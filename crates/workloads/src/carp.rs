//! CARP instruction traces — the "compiler" of §3.2, modelled as a trace
//! generator.
//!
//! The paper relies on "the programmer and/or the compiler \[to\] generate
//! instructions that instruct the router to set up a path or circuit that
//! will be heavily used during a certain period of time". No such compiler
//! exists (the paper itself estimates "several years"), so this module
//! emits the instruction streams such a compiler would produce for two
//! archetypal phased kernels:
//!
//! * [`CarpTrace::stencil`] — every node exchanges bursts with its +X/+Y
//!   neighbours each phase (relaxation/stencil codes);
//! * [`CarpTrace::pairwise`] — fixed hot pairs exchange message bursts
//!   (master/worker or halo-exchange style), using the same partner sets
//!   as the `HotPairs` traffic pattern so CLRP and CARP runs are
//!   comparable.

use wavesim_network::Message;
use wavesim_sim::{Cycle, SimRng};
use wavesim_topology::{Dir, NodeId, PortDir, Topology};

use crate::patterns::partners_of;

/// One CARP instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CarpOp {
    /// `ESTABLISH src → dest`: request a circuit ahead of use
    /// ("similar to prefetching for caches", §3).
    Establish {
        /// Requesting node.
        src: NodeId,
        /// Circuit destination.
        dest: NodeId,
    },
    /// `SEND`: submit a message (uses the circuit if one exists).
    Send(Message),
    /// `TEARDOWN src → dest`: release the circuit.
    Teardown {
        /// Owning node.
        src: NodeId,
        /// Circuit destination.
        dest: NodeId,
    },
}

/// A timed CARP instruction stream, sorted by cycle.
#[derive(Debug, Clone, Default)]
pub struct CarpTrace {
    /// `(cycle, op)` pairs in non-decreasing cycle order.
    pub ops: Vec<(Cycle, CarpOp)>,
}

impl CarpTrace {
    /// Number of `Send` ops in the trace.
    #[must_use]
    pub fn num_sends(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, op)| matches!(op, CarpOp::Send(_)))
            .count()
    }

    /// Last op time.
    #[must_use]
    pub fn horizon(&self) -> Cycle {
        self.ops.last().map_or(0, |(t, _)| *t)
    }

    /// Drains the ops due at `now` (call with non-decreasing `now`).
    pub fn due(&mut self, now: Cycle) -> Vec<CarpOp> {
        let split = self.ops.partition_point(|(t, _)| *t <= now);
        self.ops.drain(..split).map(|(_, op)| op).collect()
    }

    fn assert_sorted(&self) {
        debug_assert!(
            self.ops.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace must be time-sorted"
        );
    }

    /// Stencil kernel: `phases` rounds; in each round every node
    /// establishes circuits to its +X and +Y neighbours, sends
    /// `msgs_per_neighbor` messages of `len` flits, then tears the
    /// circuits down. `phase_gap` cycles separate rounds (time for
    /// establishment and transfers).
    #[must_use]
    pub fn stencil(
        topo: &Topology,
        phases: u32,
        msgs_per_neighbor: u32,
        len: u32,
        phase_gap: Cycle,
        setup_lead: Cycle,
    ) -> Self {
        assert!(setup_lead < phase_gap, "phase must outlast its setup lead");
        let mut ops = Vec::new();
        let mut id = 0u64;
        for phase in 0..phases {
            let t0 = u64::from(phase) * phase_gap;
            for node in topo.nodes() {
                for dim in 0..topo.ndims().min(2) {
                    let port = PortDir::new(dim, Dir::Plus);
                    let Some(nb) = topo.neighbor(node, port) else {
                        continue;
                    };
                    // Prefetch: establish ahead of the data.
                    ops.push((
                        t0,
                        CarpOp::Establish {
                            src: node,
                            dest: nb,
                        },
                    ));
                    for i in 0..msgs_per_neighbor {
                        let t = t0 + setup_lead + u64::from(i);
                        ops.push((t, CarpOp::Send(Message::new(id, node, nb, len, t))));
                        id += 1;
                    }
                    ops.push((
                        t0 + phase_gap - 1,
                        CarpOp::Teardown {
                            src: node,
                            dest: nb,
                        },
                    ));
                }
            }
        }
        ops.sort_by_key(|(t, _)| *t);
        let trace = Self { ops };
        trace.assert_sorted();
        trace
    }

    /// Total exchange (all-to-all personalised communication): in round
    /// `r`, node `i` sends one `len`-flit message to node `(i + r) mod N`.
    /// Each pair communicates exactly once, so a §3.2-style compiler emits
    /// **no** circuits — this is the zero-temporal-locality stress trace
    /// the literature uses to saturate wormhole networks.
    #[must_use]
    pub fn total_exchange(topo: &Topology, len: u32, round_gap: Cycle) -> Self {
        assert!(round_gap >= 1);
        let n = topo.num_nodes();
        let mut ops = Vec::new();
        let mut id = 0u64;
        for round in 1..n {
            let t = u64::from(round - 1) * round_gap;
            for i in 0..n {
                let src = NodeId(i);
                let dest = NodeId((i + round) % n);
                ops.push((t, CarpOp::Send(Message::new(id, src, dest, len, t))));
                id += 1;
            }
        }
        let trace = Self { ops };
        trace.assert_sorted();
        trace
    }

    /// Pairwise-exchange kernel: every node bursts `msgs_per_burst`
    /// messages to one of its partners per phase, bracketed by
    /// establish/teardown. See [`PairwiseSpec`] for the knobs.
    #[must_use]
    pub fn pairwise(topo: &Topology, spec: &PairwiseSpec) -> Self {
        assert!(
            spec.setup_lead < spec.phase_gap,
            "phase must outlast its lead"
        );
        assert!(spec.send_gap >= 1, "sends need spacing");
        let mut ops = Vec::new();
        let mut id = 0u64;
        let mut rng = SimRng::new(spec.seed);
        for phase in 0..spec.phases {
            let t0 = u64::from(phase) * spec.phase_gap;
            for node in topo.nodes() {
                let ps = partners_of(topo, node, spec.partners, spec.seed);
                // One partner per phase, round-robin with jitter, mimicking
                // a compiler that knows the upcoming communication epoch.
                if ps.is_empty() {
                    continue;
                }
                let dest = ps[(phase as usize + rng.index(ps.len())) % ps.len()];
                if spec.use_circuits {
                    ops.push((t0, CarpOp::Establish { src: node, dest }));
                }
                for i in 0..spec.msgs_per_burst {
                    let t = t0 + spec.setup_lead + u64::from(i) * spec.send_gap;
                    ops.push((t, CarpOp::Send(Message::new(id, node, dest, spec.len, t))));
                    id += 1;
                }
                if spec.use_circuits {
                    ops.push((
                        t0 + spec.phase_gap - 1,
                        CarpOp::Teardown { src: node, dest },
                    ));
                }
            }
        }
        ops.sort_by_key(|(t, _)| *t);
        let trace = Self { ops };
        trace.assert_sorted();
        trace
    }
}

/// Parameters of [`CarpTrace::pairwise`].
#[derive(Debug, Clone, Copy)]
pub struct PairwiseSpec {
    /// Partner-set size per node (shared with the `HotPairs` pattern).
    pub partners: u8,
    /// Number of communication phases.
    pub phases: u32,
    /// Messages per burst (the temporal-locality knob: this is how many
    /// times the circuit is reused before teardown).
    pub msgs_per_burst: u32,
    /// Message length in flits.
    pub len: u32,
    /// Cycles per phase.
    pub phase_gap: Cycle,
    /// How far ahead of the first send the ESTABLISH is issued
    /// (the "prefetch distance").
    pub setup_lead: Cycle,
    /// Spacing between consecutive sends of a burst.
    pub send_gap: Cycle,
    /// Emit ESTABLISH/TEARDOWN ops at all — `false` models a compiler
    /// that judged the locality insufficient for circuits (§3.2).
    pub use_circuits: bool,
    /// Seed for partner rotation.
    pub seed: u64,
}

impl Default for PairwiseSpec {
    fn default() -> Self {
        Self {
            partners: 3,
            phases: 3,
            msgs_per_burst: 8,
            len: 64,
            phase_gap: 3_000,
            setup_lead: 300,
            send_gap: 40,
            use_circuits: true,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(&[4, 4])
    }

    #[test]
    fn stencil_shape() {
        let t = topo();
        let trace = CarpTrace::stencil(&t, 2, 3, 32, 1000, 100);
        // 4x4 mesh: +X neighbours = 12 nodes have one, +Y likewise 12.
        // Per phase: 24 establishes, 24*3 sends, 24 teardowns.
        let establishes = trace
            .ops
            .iter()
            .filter(|(_, op)| matches!(op, CarpOp::Establish { .. }))
            .count();
        assert_eq!(establishes, 2 * 24);
        assert_eq!(trace.num_sends(), 2 * 24 * 3);
        let teardowns = trace
            .ops
            .iter()
            .filter(|(_, op)| matches!(op, CarpOp::Teardown { .. }))
            .count();
        assert_eq!(teardowns, 2 * 24);
        assert_eq!(trace.horizon(), 1999);
    }

    #[test]
    fn establish_precedes_sends_precede_teardown() {
        let t = topo();
        let trace = CarpTrace::stencil(&t, 1, 2, 16, 500, 50);
        // For an arbitrary (src, dest) pair, check op ordering.
        let src = NodeId(0);
        let dest = t.neighbor(src, PortDir::new(0, Dir::Plus)).unwrap();
        let mut t_est = None;
        let mut t_send = None;
        let mut t_tear = None;
        for (tm, op) in &trace.ops {
            match op {
                CarpOp::Establish { src: s, dest: d } if *s == src && *d == dest => {
                    t_est = Some(*tm);
                }
                CarpOp::Send(m) if m.src == src && m.dest == dest && t_send.is_none() => {
                    t_send = Some(*tm);
                }
                CarpOp::Teardown { src: s, dest: d } if *s == src && *d == dest => {
                    t_tear = Some(*tm);
                }
                _ => {}
            }
        }
        assert!(t_est.unwrap() < t_send.unwrap());
        assert!(t_send.unwrap() < t_tear.unwrap());
    }

    #[test]
    fn due_drains_in_order() {
        let t = topo();
        let mut trace = CarpTrace::stencil(&t, 1, 1, 8, 100, 10);
        let total = trace.ops.len();
        let mut drained = 0;
        for now in 0..100 {
            drained += trace.due(now).len();
        }
        assert_eq!(drained, total);
        assert!(trace.ops.is_empty());
        assert!(trace.due(1000).is_empty());
    }

    #[test]
    fn pairwise_uses_partner_sets() {
        let t = topo();
        let seed = 5;
        let trace = CarpTrace::pairwise(
            &t,
            &PairwiseSpec {
                partners: 3,
                phases: 2,
                msgs_per_burst: 4,
                len: 64,
                phase_gap: 2000,
                setup_lead: 200,
                seed,
                ..PairwiseSpec::default()
            },
        );
        for (_, op) in &trace.ops {
            if let CarpOp::Establish { src, dest } = op {
                let ps = partners_of(&t, *src, 3, seed);
                assert!(ps.contains(dest), "{dest} not a partner of {src}");
            }
        }
        assert_eq!(trace.num_sends(), 2 * 16 * 4);
    }

    #[test]
    fn send_ids_are_unique() {
        let t = topo();
        let trace = CarpTrace::stencil(&t, 3, 5, 16, 1000, 100);
        let mut ids = std::collections::HashSet::new();
        for (_, op) in &trace.ops {
            if let CarpOp::Send(m) = op {
                assert!(ids.insert(m.id));
            }
        }
    }

    #[test]
    fn total_exchange_covers_every_pair_once() {
        let t = topo(); // 16 nodes
        let trace = CarpTrace::total_exchange(&t, 8, 100);
        assert_eq!(trace.num_sends(), 16 * 15);
        let mut pairs = std::collections::HashSet::new();
        for (_, op) in &trace.ops {
            if let CarpOp::Send(m) = op {
                assert_ne!(m.src, m.dest);
                assert!(pairs.insert((m.src, m.dest)), "pair repeated");
            }
        }
        assert_eq!(pairs.len(), 16 * 15);
        // No circuit instructions at all: zero temporal locality.
        assert_eq!(trace.ops.len(), trace.num_sends());
        assert_eq!(trace.horizon(), 14 * 100);
    }
}
