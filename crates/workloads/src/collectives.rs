//! Collective communication patterns as dependency traces.
//!
//! The classic collectives of the message-passing literature, emitted as
//! [`DepTrace`]s so they replay through the dependency-aware engine
//! (`wavesim-bench::runner::run_dep_trace`) and self-pace on the network
//! under test:
//!
//! * [`all_to_all`] — every node exchanges one message with every other
//!   node, in `n - 1` shifted rounds (node `i` targets `(i + r) mod n` in
//!   round `r`); each node's round `r` send depends on its own round
//!   `r - 1` send having been delivered, so rounds pipeline per node
//!   instead of firing as one burst;
//! * [`reduce`] — a binomial reduction tree toward `root`: each non-root
//!   rank sends one partial result to its tree parent, and an inner
//!   node's send depends on **all** of its children's messages (it cannot
//!   combine what has not arrived);
//! * [`broadcast`] — the reverse: the root's subtree forwards depend on
//!   the incoming parent message;
//! * [`pattern_sweep`] — a phased spatial-pattern collective (transpose /
//!   bit-reversal / hotspot / …): every node sends one message per phase,
//!   with phase `p + 1` gated on the node's phase-`p` delivery. Silent
//!   pattern sources are remapped deterministically
//!   ([`TrafficPattern::dest_or_remap`]) — a phased collective with
//!   silent members would stall its own later phases.
//!
//! All generators are deterministic in their arguments, use dense message
//! ids (so traces merge by offsetting), and return validated traces.

use wavesim_network::Message;
use wavesim_sim::SimRng;
use wavesim_topology::{NodeId, Topology};

use crate::deptrace::{DepMessage, DepTrace};
use crate::patterns::TrafficPattern;

/// Binomial-tree parent of a non-zero rank: clear the lowest set bit.
/// Every rank's parent is a smaller rank, so the tree is well-formed for
/// any node count (not just powers of two).
fn parent_rank(rank: u32) -> u32 {
    debug_assert!(rank > 0);
    rank & (rank - 1)
}

fn rank_to_node(rank: u32, root: NodeId, n: u32) -> NodeId {
    NodeId((rank + root.0) % n)
}

fn finish(messages: Vec<DepMessage>, what: &str) -> DepTrace {
    DepTrace::new(messages).unwrap_or_else(|e| panic!("generated {what} trace must validate: {e}"))
}

/// Full pairwise exchange: `n * (n - 1)` messages of `len` flits, in
/// `n - 1` shifted rounds. Message ids are `(round - 1) * n + src`.
///
/// # Panics
/// Panics when `topo` has fewer than two nodes.
#[must_use]
pub fn all_to_all(topo: &Topology, len: u32) -> DepTrace {
    let n = topo.num_nodes();
    assert!(n >= 2, "all-to-all needs at least two nodes");
    let mut messages = Vec::with_capacity((n as usize) * (n as usize - 1));
    for r in 1..n {
        for i in 0..n {
            let id = u64::from(r - 1) * u64::from(n) + u64::from(i);
            let deps = if r > 1 {
                vec![u64::from(r - 2) * u64::from(n) + u64::from(i)]
            } else {
                Vec::new()
            };
            messages.push(DepMessage {
                msg: Message::new(id, NodeId(i), NodeId((i + r) % n), len, 0),
                deps,
            });
        }
    }
    finish(messages, "all-to-all")
}

/// Binomial-tree reduction toward `root`: `n - 1` messages of `len`
/// flits, one per non-root rank, each targeting its tree parent. An
/// inner rank's message depends on every message its children send.
/// Message ids are the sender's rank (1-based ranks relative to `root`).
///
/// # Panics
/// Panics when `topo` has fewer than two nodes or `root` is out of range.
#[must_use]
pub fn reduce(topo: &Topology, root: NodeId, len: u32) -> DepTrace {
    let n = topo.num_nodes();
    assert!(n >= 2, "reduce needs at least two nodes");
    assert!(root.0 < n, "root {root} out of range");
    // children[x] = ranks whose parent is x, i.e. the deps of x's send.
    let mut children: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    for rank in 1..n {
        children[parent_rank(rank) as usize].push(u64::from(rank));
    }
    let mut messages = Vec::with_capacity(n as usize - 1);
    for rank in 1..n {
        messages.push(DepMessage {
            msg: Message::new(
                u64::from(rank),
                rank_to_node(rank, root, n),
                rank_to_node(parent_rank(rank), root, n),
                len,
                0,
            ),
            deps: std::mem::take(&mut children[rank as usize]),
        });
    }
    finish(messages, "reduce")
}

/// Binomial-tree broadcast from `root`: `n - 1` messages of `len` flits,
/// one per non-root rank, each sent by the rank's tree parent. A forward
/// deeper in the tree depends on the message that brought the data to its
/// sender. Message ids are the receiver's rank.
///
/// # Panics
/// Panics when `topo` has fewer than two nodes or `root` is out of range.
#[must_use]
pub fn broadcast(topo: &Topology, root: NodeId, len: u32) -> DepTrace {
    let n = topo.num_nodes();
    assert!(n >= 2, "broadcast needs at least two nodes");
    assert!(root.0 < n, "root {root} out of range");
    let mut messages = Vec::with_capacity(n as usize - 1);
    for rank in 1..n {
        let parent = parent_rank(rank);
        let deps = if parent == 0 {
            Vec::new()
        } else {
            vec![u64::from(parent)]
        };
        messages.push(DepMessage {
            msg: Message::new(
                u64::from(rank),
                rank_to_node(parent, root, n),
                rank_to_node(rank, root, n),
                len,
                0,
            ),
            deps,
        });
    }
    finish(messages, "broadcast")
}

/// A phased spatial-pattern collective: `phases` rounds in which every
/// node sends one `len`-flit message to its pattern destination, phase
/// `p + 1` gated on the node's own phase-`p` delivery. Randomized
/// patterns (hotspot, uniform, hot-pairs) draw each `(phase, node)`
/// destination from an rng split off `seed`, so the trace is a pure
/// function of its arguments. Silent sources are remapped
/// ([`TrafficPattern::dest_or_remap`]) — every node sends in every phase.
/// Message ids are `phase * n + node`.
///
/// # Panics
/// Panics when `topo` has fewer than two nodes (no pattern can be
/// non-silent there) or on a pattern/topology mismatch (e.g. transpose on
/// a non-square mesh).
#[must_use]
pub fn pattern_sweep(
    topo: &Topology,
    pattern: TrafficPattern,
    phases: u32,
    len: u32,
    seed: u64,
) -> DepTrace {
    let n = topo.num_nodes();
    assert!(n >= 2, "a pattern sweep needs at least two nodes");
    let mut messages = Vec::with_capacity(phases as usize * n as usize);
    for p in 0..phases {
        for i in 0..n {
            let mut rng = SimRng::new(seed ^ 0xC01_1EC7)
                .split(u64::from(p))
                .split(u64::from(i));
            let dest = pattern
                .dest_or_remap(topo, NodeId(i), &mut rng, seed)
                .expect("n >= 2 guarantees a destination");
            let id = u64::from(p) * u64::from(n) + u64::from(i);
            let deps = if p > 0 {
                vec![u64::from(p - 1) * u64::from(n) + u64::from(i)]
            } else {
                Vec::new()
            };
            messages.push(DepMessage {
                msg: Message::new(id, NodeId(i), dest, len, 0),
                deps,
            });
        }
    }
    finish(messages, "pattern sweep")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Topology {
        Topology::mesh(&[4, 4])
    }

    #[test]
    fn all_to_all_covers_every_pair_once() {
        let t = mesh();
        let trace = all_to_all(&t, 8);
        assert_eq!(trace.len(), 16 * 15);
        let mut pairs = std::collections::HashSet::new();
        for m in &trace.messages {
            assert!(pairs.insert((m.msg.src, m.msg.dest)), "duplicate pair");
            assert_ne!(m.msg.src, m.msg.dest);
        }
        assert_eq!(pairs.len(), 16 * 15);
        // Round 1 is dependency-free; later rounds chain per source.
        assert_eq!(trace.num_roots(), 16);
    }

    #[test]
    fn reduce_tree_flows_toward_root_with_child_deps() {
        let t = mesh();
        let root = NodeId(5);
        let trace = reduce(&t, root, 16);
        assert_eq!(trace.len(), 15);
        // Exactly the direct children of rank 0 (ranks that are powers of
        // two) target the root, and leaves are the dependency-free sends.
        let to_root = trace.messages.iter().filter(|m| m.msg.dest == root).count();
        assert_eq!(to_root, 4, "ranks 1, 2, 4, 8 send to the root");
        for m in &trace.messages {
            assert_ne!(m.msg.src, root, "the root never sends in a reduce");
        }
        // Rank 4's send depends on its children 5 and 6 (7's parent is 6,
        // 12's parent is 8).
        let rank4 = trace.messages.iter().find(|m| m.msg.id.0 == 4).unwrap();
        assert_eq!(rank4.deps, vec![5, 6]);
    }

    #[test]
    fn broadcast_mirrors_reduce_downward() {
        let t = mesh();
        let root = NodeId(0);
        let trace = broadcast(&t, root, 16);
        assert_eq!(trace.len(), 15);
        let from_root = trace.messages.iter().filter(|m| m.msg.src == root).count();
        assert_eq!(from_root, 4);
        for m in &trace.messages {
            assert_ne!(m.msg.dest, root, "the root never receives");
        }
        // Rank 5 (= 4 | 1) hears from rank 4, whose data came via rank 4's
        // own incoming message.
        let rank5 = trace.messages.iter().find(|m| m.msg.id.0 == 5).unwrap();
        assert_eq!(rank5.msg.src, NodeId(4));
        assert_eq!(rank5.deps, vec![4]);
    }

    #[test]
    fn pattern_sweep_chains_phases_and_silences_nobody() {
        let t = mesh();
        let trace = pattern_sweep(&t, TrafficPattern::Transpose, 3, 8, 11);
        assert_eq!(trace.len(), 3 * 16);
        assert_eq!(trace.num_roots(), 16, "phase 0 is dependency-free");
        for m in &trace.messages {
            assert_ne!(m.msg.src, m.msg.dest, "remap keeps diagonals sending");
        }
        // Phase 2's node 3 depends on phase 1's node 3.
        let m = trace
            .messages
            .iter()
            .find(|m| m.msg.id.0 == 2 * 16 + 3)
            .unwrap();
        assert_eq!(m.deps, vec![16 + 3]);
        // Deterministic in its arguments.
        let again = pattern_sweep(&t, TrafficPattern::Transpose, 3, 8, 11);
        assert_eq!(trace, again);
    }

    #[test]
    fn hotspot_sweep_is_deterministic_and_non_self() {
        let t = mesh();
        let pat = TrafficPattern::Hotspot {
            node: 5,
            fraction: 0.8,
        };
        let a = pattern_sweep(&t, pat, 2, 4, 9);
        let b = pattern_sweep(&t, pat, 2, 4, 9);
        assert_eq!(a, b);
        let hot_hits = a
            .messages
            .iter()
            .filter(|m| m.msg.dest == NodeId(5))
            .count();
        assert!(hot_hits > a.len() / 2, "hotspot concentrates: {hot_hits}");
    }
}
