//! Closed-loop request/reply (DSM) workload.
//!
//! The paper's introduction motivates wave switching with
//! distributed-shared-memory machines, where "messages are directly sent
//! by the hardware … as a consequence of remote memory accesses or
//! coherence commands" and "reducing the network hardware latency … is
//! crucial". The natural workload is *closed-loop*: a node issues a short
//! **request** to a home node, the home services it, and a longer
//! **reply** (the cache line / page data) returns; the requester only has
//! a bounded number of outstanding requests.
//!
//! [`ReqRepWorkload`] generates that pattern over the same hot-partner
//! sets as [`crate::patterns::TrafficPattern::HotPairs`], so open-loop and
//! closed-loop experiments are comparable. The driving loop lives in
//! `wavesim-bench::runner::run_request_reply`.

use std::collections::HashMap;

use wavesim_network::Message;
use wavesim_sim::{Cycle, SimRng};
use wavesim_topology::{NodeId, Topology};

use crate::patterns::{partners_of, pick_partner};

/// Configuration of the request/reply workload.
#[derive(Debug, Clone, Copy)]
pub struct ReqRepConfig {
    /// Hot home nodes per requester.
    pub partners: u8,
    /// Probability a request targets a hot home (vs uniform).
    pub locality: f64,
    /// Outstanding requests allowed per node (MSHR-like bound).
    pub outstanding: u32,
    /// Request length in flits (address + command).
    pub req_len: u32,
    /// Reply length in flits (the data).
    pub reply_len: u32,
    /// Cycles the home node takes to service a request.
    pub service_time: u64,
    /// Think time before a completed slot issues the next request.
    pub think_time: u64,
    /// RNG seed.
    pub seed: u64,
    /// No new requests after this cycle.
    pub stop_at: Cycle,
}

impl Default for ReqRepConfig {
    fn default() -> Self {
        Self {
            partners: 3,
            locality: 0.8,
            outstanding: 2,
            req_len: 4,
            reply_len: 64,
            service_time: 20,
            think_time: 10,
            seed: 1,
            stop_at: Cycle::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    requester: NodeId,
    issued_at: Cycle,
}

/// The closed-loop generator plus its in-flight bookkeeping.
pub struct ReqRepWorkload {
    topo: Topology,
    cfg: ReqRepConfig,
    rng: SimRng,
    /// Per node: cycle at which each request slot becomes free again
    /// (slots with a value > now are busy).
    slots: Vec<Vec<Cycle>>,
    next_id: u64,
    /// Outstanding requests by message id.
    pending: HashMap<u64, PendingReq>,
    /// Completed round trips: (issued_at, completed_at).
    completed: Vec<(Cycle, Cycle)>,
    requests_issued: u64,
}

impl ReqRepWorkload {
    /// Builds the workload over `topo`.
    #[must_use]
    pub fn new(topo: Topology, cfg: ReqRepConfig) -> Self {
        assert!(cfg.outstanding >= 1);
        assert!(cfg.req_len >= 1 && cfg.reply_len >= 1);
        let n = topo.num_nodes() as usize;
        Self {
            rng: SimRng::new(cfg.seed ^ 0xD5_0001),
            slots: vec![vec![0; cfg.outstanding as usize]; n],
            next_id: 0,
            pending: HashMap::new(),
            completed: Vec::new(),
            requests_issued: 0,
            topo,
            cfg,
        }
    }

    fn draw_home(&mut self, src: NodeId) -> Option<NodeId> {
        let n = self.topo.num_nodes();
        if n < 2 {
            return None;
        }
        if self.rng.chance(self.cfg.locality) {
            let ps = partners_of(&self.topo, src, self.cfg.partners, self.cfg.seed);
            if !ps.is_empty() {
                return Some(ps[pick_partner(&mut self.rng, ps.len())]);
            }
        }
        let mut d = NodeId(self.rng.below(u64::from(n)) as u32);
        while d == src {
            d = NodeId(self.rng.below(u64::from(n)) as u32);
        }
        Some(d)
    }

    /// Requests to inject at cycle `now` (call once per cycle with
    /// non-decreasing `now`).
    pub fn poll(&mut self, now: Cycle) -> Vec<Message> {
        let mut out = Vec::new();
        if now >= self.cfg.stop_at {
            return out;
        }
        for node in 0..self.slots.len() {
            for slot in 0..self.slots[node].len() {
                if self.slots[node][slot] > now {
                    continue;
                }
                let src = NodeId(node as u32);
                let Some(home) = self.draw_home(src) else {
                    continue;
                };
                let id = self.next_id;
                self.next_id += 1;
                self.requests_issued += 1;
                self.pending.insert(
                    id,
                    PendingReq {
                        requester: src,
                        issued_at: now,
                    },
                );
                // Slot busy until the reply completes (on_delivered frees it).
                self.slots[node][slot] = Cycle::MAX;
                out.push(Message::new(id, src, home, self.cfg.req_len, now));
            }
        }
        out
    }

    /// Feeds a delivery back into the workload. A delivered **request**
    /// yields `Some((send_at, reply))` — the home node's reply, available
    /// after the service time. A delivered **reply** completes the round
    /// trip, records it, and frees the requester's slot after the think
    /// time.
    pub fn on_delivered(
        &mut self,
        msg_id: u64,
        dest: NodeId,
        now: Cycle,
    ) -> Option<(Cycle, Message)> {
        const REPLY_BIT: u64 = 1 << 63;
        let entry = self
            .pending
            .remove(&msg_id)
            .expect("delivery of a message this workload never issued");
        if msg_id & REPLY_BIT == 0 {
            // A request reached its home: emit the reply after service.
            let reply_id = msg_id | REPLY_BIT;
            let send_at = now + self.cfg.service_time;
            self.pending.insert(reply_id, entry);
            Some((
                send_at,
                Message::new(reply_id, dest, entry.requester, self.cfg.reply_len, send_at),
            ))
        } else {
            // The reply is home: round trip complete.
            debug_assert_eq!(entry.requester, dest, "reply delivered to requester");
            self.completed.push((entry.issued_at, now));
            let node = entry.requester.0 as usize;
            let slot = self.slots[node]
                .iter()
                .position(|&t| t == Cycle::MAX)
                .expect("requester has a busy slot to free");
            self.slots[node][slot] = now + self.cfg.think_time;
            None
        }
    }

    /// Completed round trips so far: `(issued_at, completed_at)` pairs.
    #[must_use]
    pub fn completed(&self) -> &[(Cycle, Cycle)] {
        &self.completed
    }

    /// Requests issued so far.
    #[must_use]
    pub fn requests_issued(&self) -> u64 {
        self.requests_issued
    }

    /// Requests (or replies) still in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(&[4, 4])
    }

    fn wl(outstanding: u32) -> ReqRepWorkload {
        ReqRepWorkload::new(
            topo(),
            ReqRepConfig {
                outstanding,
                stop_at: 1_000,
                ..ReqRepConfig::default()
            },
        )
    }

    #[test]
    fn issues_up_to_outstanding_per_node() {
        let mut w = wl(2);
        let reqs = w.poll(0);
        assert_eq!(reqs.len(), 16 * 2, "every node fills its two slots");
        // No further requests until replies complete.
        assert!(w.poll(1).is_empty());
        assert_eq!(w.in_flight(), 32);
    }

    #[test]
    fn request_reply_round_trip_bookkeeping() {
        let mut w = wl(1);
        let reqs = w.poll(0);
        let r = reqs[0];
        // The request arrives at its home at t=50.
        let (send_at, reply) = w.on_delivered(r.id.0, r.dest, 50).expect("a reply");
        assert_eq!(send_at, 50 + 20, "service time honoured");
        assert_eq!(reply.src, r.dest);
        assert_eq!(reply.dest, r.src);
        assert_eq!(reply.len_flits, 64);
        assert!(reply.id.0 & (1 << 63) != 0);
        // The reply arrives back at t=100: round trip recorded.
        assert!(w.on_delivered(reply.id.0, reply.dest, 100).is_none());
        assert_eq!(w.completed(), &[(0, 100)]);
        // The slot reopens after think time (10): nothing at 105, new
        // request at 110.
        let none_yet: Vec<_> = w.poll(105).into_iter().filter(|m| m.src == r.src).collect();
        assert!(none_yet.is_empty());
        let again: Vec<_> = w.poll(110).into_iter().filter(|m| m.src == r.src).collect();
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn locality_targets_partner_homes() {
        let cfg = ReqRepConfig {
            locality: 1.0,
            partners: 2,
            stop_at: 10,
            ..ReqRepConfig::default()
        };
        let t = topo();
        let mut w = ReqRepWorkload::new(t.clone(), cfg);
        for m in w.poll(0) {
            let ps = partners_of(&t, m.src, 2, cfg.seed);
            assert!(ps.contains(&m.dest), "{} not a home of {}", m.dest, m.src);
        }
    }

    #[test]
    fn stop_at_halts_generation() {
        let mut w = wl(1);
        assert!(!w.poll(999).is_empty() || w.in_flight() > 0);
        let mut w2 = ReqRepWorkload::new(
            topo(),
            ReqRepConfig {
                stop_at: 0,
                ..ReqRepConfig::default()
            },
        );
        assert!(w2.poll(0).is_empty());
    }
}
