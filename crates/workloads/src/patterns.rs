//! Spatial traffic patterns.
//!
//! Each pattern maps a source node to a destination draw. Deterministic
//! patterns (transpose, bit-reversal, bit-complement) may leave a node
//! silent when it maps to itself — the convention of the literature.
//! Callers that cannot tolerate silent nodes (phased collectives, which
//! would deadlock on a member that never sends) draw with
//! [`TrafficPattern::dest_or_remap`], which remaps self-images
//! deterministically instead.

use wavesim_sim::SimRng;
use wavesim_topology::{NodeId, Topology};

/// A destination-selection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Uniformly random destination (≠ source).
    Uniform,
    /// 2-D matrix transpose: `(x, y) → (y, x)`. Requires a square 2-D
    /// topology; diagonal nodes are silent.
    Transpose,
    /// Bit reversal of the node index. Requires a power-of-two node count;
    /// palindromic nodes are silent.
    BitReversal,
    /// Bit complement of the node index. Requires a power-of-two node
    /// count; always productive.
    BitComplement,
    /// With probability `fraction`, send to node `node`; otherwise
    /// uniform. The classic hotspot stressor.
    Hotspot {
        /// The hot node's id.
        node: u32,
        /// Probability of targeting the hot node.
        fraction: f64,
    },
    /// Uniformly random physical neighbour — maximal spatial locality.
    NearestNeighbor,
    /// Temporal-locality pattern: each source owns `partners` fixed
    /// partner nodes (chosen deterministically from the seed); with
    /// probability `locality` the destination is one of them, otherwise
    /// uniform. `locality = 0` degenerates to uniform; `locality = 1`
    /// restricts all traffic to the partner set — the regime where
    /// circuit caching pays off.
    HotPairs {
        /// Partners per source node.
        partners: u8,
        /// Probability a message targets a partner.
        locality: f64,
    },
}

fn bits_of(n: u32) -> u32 {
    assert!(n.is_power_of_two(), "pattern requires power-of-two nodes");
    n.trailing_zeros()
}

/// Draws a partner index in `[0, n)` with harmonic (Zipf-like) weights:
/// partner 0 is the hottest, partner `i` has weight `1/(i+1)`. This skew is
/// what lets recency/frequency replacement policies beat FIFO/Random in the
/// E6 experiment — with uniform partner popularity all policies tie.
#[must_use]
pub fn pick_partner(rng: &mut SimRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let total: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut u = rng.unit() * total;
    for i in 0..n {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Deterministic partner list of `src` under seed `seed` (used by
/// `HotPairs`; exposed so CARP trace builders can pick the same partners).
#[must_use]
pub fn partners_of(topo: &Topology, src: NodeId, partners: u8, seed: u64) -> Vec<NodeId> {
    let n = topo.num_nodes();
    let mut rng = SimRng::new(seed ^ 0x9E37_79B9).split(u64::from(src.0));
    let mut out = Vec::with_capacity(partners as usize);
    while out.len() < partners as usize && out.len() + 1 < n as usize {
        let cand = NodeId(rng.below(u64::from(n)) as u32);
        if cand != src && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

impl TrafficPattern {
    /// Draws a destination for `src`, or `None` when this source is silent
    /// under the pattern.
    #[must_use]
    pub fn dest(
        &self,
        topo: &Topology,
        src: NodeId,
        rng: &mut SimRng,
        seed: u64,
    ) -> Option<NodeId> {
        let n = topo.num_nodes();
        match *self {
            TrafficPattern::Uniform => {
                if n < 2 {
                    return None;
                }
                let mut d = NodeId(rng.below(u64::from(n)) as u32);
                while d == src {
                    d = NodeId(rng.below(u64::from(n)) as u32);
                }
                Some(d)
            }
            TrafficPattern::Transpose => {
                assert_eq!(topo.ndims(), 2, "transpose needs a 2-D topology");
                assert_eq!(topo.radix(0), topo.radix(1), "transpose needs a square");
                let c = topo.coords(src);
                let d = topo.node(wavesim_topology::Coords::new(&[c.get(1), c.get(0)]));
                (d != src).then_some(d)
            }
            TrafficPattern::BitReversal => {
                let b = bits_of(n);
                let d = NodeId(src.0.reverse_bits() >> (32 - b));
                (d != src).then_some(d)
            }
            TrafficPattern::BitComplement => {
                let _ = bits_of(n);
                let d = NodeId(!src.0 & (n - 1));
                (d != src).then_some(d)
            }
            TrafficPattern::Hotspot { node, fraction } => {
                let hot = NodeId(node);
                if src != hot && rng.chance(fraction) {
                    Some(hot)
                } else {
                    TrafficPattern::Uniform.dest(topo, src, rng, seed)
                }
            }
            TrafficPattern::NearestNeighbor => {
                let ports = topo.ports_of(src);
                let port = *rng.choose(&ports)?;
                topo.neighbor(src, port)
            }
            TrafficPattern::HotPairs { partners, locality } => {
                if rng.chance(locality) {
                    let ps = partners_of(topo, src, partners, seed);
                    if ps.is_empty() {
                        TrafficPattern::Uniform.dest(topo, src, rng, seed)
                    } else {
                        Some(ps[pick_partner(rng, ps.len())])
                    }
                } else {
                    TrafficPattern::Uniform.dest(topo, src, rng, seed)
                }
            }
        }
    }

    /// Like [`TrafficPattern::dest`], but *remaps* a silent source
    /// deterministically instead of returning `None`: a source whose
    /// pattern image is itself (a transpose diagonal, a bit-reversal
    /// palindrome) sends to its successor node id instead. Collective
    /// sweeps use this so every node stays productive — a phased
    /// collective with silent members would deadlock waiting on messages
    /// that are never sent.
    ///
    /// Returns `None` only when the topology has fewer than two nodes
    /// (no non-self destination exists at all).
    #[must_use]
    pub fn dest_or_remap(
        &self,
        topo: &Topology,
        src: NodeId,
        rng: &mut SimRng,
        seed: u64,
    ) -> Option<NodeId> {
        let n = topo.num_nodes();
        if n < 2 {
            return None;
        }
        match self.dest(topo, src, rng, seed) {
            Some(d) => Some(d),
            None => Some(NodeId((src.0 + 1) % n)),
        }
    }
}

/// Materializes `count` deterministic `(src, dest)` pairs under a
/// pattern: sources round-robin over the nodes, destinations are drawn
/// with [`TrafficPattern::dest`] from an rng derived from `seed`. Silent
/// sources are **skipped deterministically** — the round-robin simply
/// moves on, so the returned pairs never contain a self-send and the
/// request is still filled from the productive sources (a bounded
/// attempts budget keeps a fully-silent pattern from looping forever).
/// Callers that instead need *every* node productive (phased collectives)
/// should draw with [`TrafficPattern::dest_or_remap`]. Built for the
/// model checker (`wavesim-model`), whose specs are *fixed* small message
/// sets rather than rate-driven streams — but any caller wanting a
/// reproducible pattern sample can use it.
#[must_use]
pub fn pattern_pairs(
    topo: &Topology,
    pattern: TrafficPattern,
    count: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let mut rng = SimRng::new(seed);
    let mut pairs = Vec::with_capacity(count);
    let nodes: Vec<NodeId> = topo.nodes().collect();
    // A pattern can be silent from many sources (e.g. transpose on the
    // diagonal); bound the scan so a fully silent pattern terminates.
    let mut attempts = 0usize;
    let budget = count.saturating_mul(nodes.len().max(1)).saturating_mul(4);
    let mut i = 0usize;
    while pairs.len() < count && attempts < budget {
        attempts += 1;
        let src = nodes[i % nodes.len()];
        i += 1;
        if let Some(dest) = pattern.dest(topo, src, &mut rng, seed) {
            debug_assert_ne!(dest, src, "patterns never draw a self-send");
            pairs.push((src, dest));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::Coords;

    fn mesh() -> Topology {
        Topology::mesh(&[4, 4])
    }

    #[test]
    fn pattern_pairs_is_deterministic_and_non_self() {
        let t = mesh();
        let a = pattern_pairs(&t, TrafficPattern::Uniform, 6, 42);
        let b = pattern_pairs(&t, TrafficPattern::Uniform, 6, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        for (s, d) in &a {
            assert_ne!(s, d);
        }
        // Transpose silences the diagonal but still fills the request.
        let tp = pattern_pairs(&t, TrafficPattern::Transpose, 4, 1);
        assert_eq!(tp.len(), 4);
        for (s, d) in &tp {
            let c = t.coords(*s);
            assert_eq!(*d, t.node(Coords::new(&[c.get(1), c.get(0)])));
        }
    }

    #[test]
    fn uniform_never_self() {
        let t = mesh();
        let mut rng = SimRng::new(1);
        for src in t.nodes() {
            for _ in 0..50 {
                let d = TrafficPattern::Uniform.dest(&t, src, &mut rng, 0).unwrap();
                assert_ne!(d, src);
                assert!(d.0 < 16);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = mesh();
        let mut rng = SimRng::new(1);
        let src = t.node(Coords::new(&[1, 3]));
        let d = TrafficPattern::Transpose
            .dest(&t, src, &mut rng, 0)
            .unwrap();
        assert_eq!(t.coords(d).as_slice(), &[3, 1]);
        // Diagonal nodes are silent.
        let diag = t.node(Coords::new(&[2, 2]));
        assert!(TrafficPattern::Transpose
            .dest(&t, diag, &mut rng, 0)
            .is_none());
    }

    #[test]
    fn bit_patterns() {
        let t = mesh(); // 16 nodes, 4 bits
        let mut rng = SimRng::new(1);
        let d = TrafficPattern::BitComplement
            .dest(&t, NodeId(0b0011), &mut rng, 0)
            .unwrap();
        assert_eq!(d.0, 0b1100);
        let d = TrafficPattern::BitReversal
            .dest(&t, NodeId(0b0001), &mut rng, 0)
            .unwrap();
        assert_eq!(d.0, 0b1000);
        // Palindrome is silent under reversal.
        assert!(TrafficPattern::BitReversal
            .dest(&t, NodeId(0b1001), &mut rng, 0)
            .is_none());
    }

    #[test]
    fn hotspot_concentrates() {
        let t = mesh();
        let mut rng = SimRng::new(2);
        let pat = TrafficPattern::Hotspot {
            node: 5,
            fraction: 0.5,
        };
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            if pat.dest(&t, NodeId(0), &mut rng, 0) == Some(NodeId(5)) {
                hits += 1;
            }
        }
        let frac = f64::from(hits) / f64::from(trials);
        assert!(frac > 0.45 && frac < 0.60, "hot fraction {frac}");
    }

    #[test]
    fn nearest_neighbor_is_adjacent() {
        let t = mesh();
        let mut rng = SimRng::new(3);
        for src in t.nodes() {
            for _ in 0..20 {
                let d = TrafficPattern::NearestNeighbor
                    .dest(&t, src, &mut rng, 0)
                    .unwrap();
                assert_eq!(t.distance(src, d), 1);
            }
        }
    }

    #[test]
    fn hot_pairs_locality_targets_partners() {
        let t = mesh();
        let seed = 77;
        let pat = TrafficPattern::HotPairs {
            partners: 2,
            locality: 1.0,
        };
        let mut rng = SimRng::new(4);
        let src = NodeId(3);
        let ps = partners_of(&t, src, 2, seed);
        assert_eq!(ps.len(), 2);
        for _ in 0..100 {
            let d = pat.dest(&t, src, &mut rng, seed).unwrap();
            assert!(ps.contains(&d), "{d} not in partner set {ps:?}");
        }
    }

    #[test]
    fn partners_are_stable_and_distinct() {
        let t = mesh();
        let a = partners_of(&t, NodeId(7), 4, 9);
        let b = partners_of(&t, NodeId(7), 4, 9);
        assert_eq!(a, b);
        let uniq: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(uniq.len(), 4);
        assert!(!a.contains(&NodeId(7)));
        // Different seed, different partners (overwhelmingly likely).
        let c = partners_of(&t, NodeId(7), 4, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn partner_pick_is_skewed_toward_low_indices() {
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[pick_partner(&mut rng, 4)] += 1;
        }
        // Harmonic weights 1, 1/2, 1/3, 1/4 over total 25/12:
        // expect ~48%, 24%, 16%, 12%.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > 0, "tail partners still get traffic");
        let frac0 = f64::from(counts[0]) / 8000.0;
        assert!((frac0 - 0.48).abs() < 0.05, "hottest share {frac0}");
    }

    #[test]
    fn dest_or_remap_makes_every_source_productive() {
        let t = mesh();
        let mut rng = SimRng::new(5);
        for pat in [
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
        ] {
            for src in t.nodes() {
                let d = pat.dest_or_remap(&t, src, &mut rng, 0).unwrap();
                assert_ne!(d, src, "{pat:?} remap must not self-send");
            }
        }
        // The remap is deterministic: a transpose diagonal node sends to
        // its successor id.
        let diag = t.node(Coords::new(&[2, 2]));
        let d = TrafficPattern::Transpose
            .dest_or_remap(&t, diag, &mut rng, 0)
            .unwrap();
        assert_eq!(d.0, diag.0 + 1);
        // Productive sources keep their pattern image.
        let src = t.node(Coords::new(&[1, 3]));
        let d = TrafficPattern::Transpose
            .dest_or_remap(&t, src, &mut rng, 0)
            .unwrap();
        assert_eq!(t.coords(d).as_slice(), &[3, 1]);
    }

    #[test]
    fn hotspot_source_at_hot_node_still_injects() {
        // The hot node itself falls through to uniform — it is never
        // silent and never targets itself.
        let t = mesh();
        let mut rng = SimRng::new(6);
        let pat = TrafficPattern::Hotspot {
            node: 5,
            fraction: 0.9,
        };
        for _ in 0..200 {
            let d = pat.dest(&t, NodeId(5), &mut rng, 0).unwrap();
            assert_ne!(d, NodeId(5));
        }
    }

    #[test]
    fn pattern_pairs_skips_silent_sources_but_fills_request() {
        let t = mesh();
        // 16 sources round-robin; 4 transpose diagonals are silent, yet a
        // 16-pair request is filled entirely from productive sources.
        let pairs = pattern_pairs(&t, TrafficPattern::Transpose, 16, 3);
        assert_eq!(pairs.len(), 16);
        for (s, d) in &pairs {
            assert_ne!(s, d);
            let c = t.coords(*s);
            assert!(c.get(0) != c.get(1), "diagonal sources are skipped");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_pattern_rejects_non_pow2() {
        let t = Topology::mesh(&[3, 3]);
        let mut rng = SimRng::new(1);
        let _ = TrafficPattern::BitComplement.dest(&t, NodeId(0), &mut rng, 0);
    }
}
