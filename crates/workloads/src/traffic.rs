//! Open-loop traffic injection.
//!
//! Every node runs an independent Bernoulli message process tuned so the
//! *offered load* — flits per node per cycle — matches the configured
//! value, the standard methodology of the evaluation sections this
//! reproduction regenerates. Sources stop at a configurable horizon so
//! runs can drain and the delivered/offered accounting closes.

use wavesim_network::Message;
use wavesim_sim::{Cycle, SimRng};
use wavesim_topology::{NodeId, Topology};

use crate::patterns::TrafficPattern;

/// Message-length distribution, in flits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDist {
    /// Every message has the same length.
    Fixed(u32),
    /// Short/long mix: long with probability `frac_long`. The paper's
    /// short-vs-long discussion (§1, §5) motivates this shape.
    Bimodal {
        /// Short-message length.
        short: u32,
        /// Long-message length.
        long: u32,
        /// Fraction of long messages.
        frac_long: f64,
    },
    /// Uniform in `[min, max]`.
    UniformRange {
        /// Minimum length.
        min: u32,
        /// Maximum length.
        max: u32,
    },
}

impl LengthDist {
    /// Expected length in flits.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDist::Fixed(l) => f64::from(l),
            LengthDist::Bimodal {
                short,
                long,
                frac_long,
            } => f64::from(short) * (1.0 - frac_long) + f64::from(long) * frac_long,
            LengthDist::UniformRange { min, max } => (f64::from(min) + f64::from(max)) / 2.0,
        }
    }

    /// Draws a length.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            LengthDist::Fixed(l) => l,
            LengthDist::Bimodal {
                short,
                long,
                frac_long,
            } => {
                if rng.chance(frac_long) {
                    long
                } else {
                    short
                }
            }
            LengthDist::UniformRange { min, max } => {
                assert!(min <= max);
                min + rng.below(u64::from(max - min + 1)) as u32
            }
        }
    }
}

/// Traffic process configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Offered load in flits per node per cycle.
    pub load: f64,
    /// Spatial pattern.
    pub pattern: TrafficPattern,
    /// Message lengths.
    pub len: LengthDist,
    /// RNG seed (drives arrivals, destinations, and lengths).
    pub seed: u64,
    /// Cycle after which sources fall silent (`u64::MAX` = never).
    pub stop_at: Cycle,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            load: 0.1,
            pattern: TrafficPattern::Uniform,
            len: LengthDist::Fixed(16),
            seed: 1,
            stop_at: Cycle::MAX,
        }
    }
}

/// Per-node Bernoulli message sources.
pub struct TrafficSource {
    topo: Topology,
    cfg: TrafficConfig,
    per_node: Vec<NodeSource>,
    next_id: u64,
    generated: u64,
}

struct NodeSource {
    rng: SimRng,
    next_fire: Cycle,
}

impl TrafficSource {
    /// Builds sources for every node of `topo`.
    ///
    /// # Panics
    /// Panics unless `0 < load` and the mean message length is positive.
    #[must_use]
    pub fn new(topo: Topology, cfg: TrafficConfig) -> Self {
        assert!(cfg.load > 0.0, "offered load must be positive");
        let mean = cfg.len.mean();
        assert!(mean >= 1.0, "mean message length must be >= 1 flit");
        let p = (cfg.load / mean).min(1.0);
        let root = SimRng::new(cfg.seed);
        let per_node = (0..topo.num_nodes())
            .map(|n| {
                let mut rng = root.split(u64::from(n));
                let first = rng.geometric(p).saturating_sub(1);
                NodeSource {
                    rng,
                    next_fire: first,
                }
            })
            .collect();
        Self {
            topo,
            cfg,
            per_node,
            next_id: 0,
            generated: 0,
        }
    }

    /// Messages generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Per-cycle message probability per node.
    #[must_use]
    pub fn msg_probability(&self) -> f64 {
        (self.cfg.load / self.cfg.len.mean()).min(1.0)
    }

    /// Collects the messages created at cycle `now` (call once per cycle,
    /// with non-decreasing `now`).
    pub fn poll(&mut self, now: Cycle) -> Vec<Message> {
        let mut out = Vec::new();
        if now >= self.cfg.stop_at {
            return out;
        }
        let p = self.msg_probability();
        for n in 0..self.per_node.len() {
            while self.per_node[n].next_fire <= now {
                let src = NodeId(n as u32);
                let ns = &mut self.per_node[n];
                ns.next_fire += ns.rng.geometric(p).max(1);
                if let Some(dest) =
                    self.cfg
                        .pattern
                        .dest(&self.topo, src, &mut ns.rng, self.cfg.seed)
                {
                    let len = self.cfg.len.sample(&mut ns.rng);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.generated += 1;
                    out.push(Message::new(id, src, dest, len.max(1), now));
                }
            }
        }
        out
    }

    /// Silences all sources from `cycle` on.
    pub fn stop_at(&mut self, cycle: Cycle) {
        self.cfg.stop_at = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(&[4, 4])
    }

    #[test]
    fn length_means() {
        assert_eq!(LengthDist::Fixed(16).mean(), 16.0);
        let b = LengthDist::Bimodal {
            short: 8,
            long: 128,
            frac_long: 0.25,
        };
        assert!((b.mean() - 38.0).abs() < 1e-9);
        assert_eq!(LengthDist::UniformRange { min: 4, max: 8 }.mean(), 6.0);
    }

    #[test]
    fn samples_respect_distributions() {
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            assert_eq!(LengthDist::Fixed(7).sample(&mut rng), 7);
            let u = LengthDist::UniformRange { min: 3, max: 9 }.sample(&mut rng);
            assert!((3..=9).contains(&u));
            let b = LengthDist::Bimodal {
                short: 2,
                long: 99,
                frac_long: 0.5,
            }
            .sample(&mut rng);
            assert!(b == 2 || b == 99);
        }
    }

    #[test]
    fn offered_load_is_approximated() {
        let cfg = TrafficConfig {
            load: 0.2,
            len: LengthDist::Fixed(10),
            stop_at: 10_000,
            ..TrafficConfig::default()
        };
        let mut src = TrafficSource::new(topo(), cfg);
        let mut flits = 0u64;
        for now in 0..10_000 {
            for m in src.poll(now) {
                flits += u64::from(m.len_flits);
            }
        }
        // 16 nodes * 10k cycles * 0.2 = 32k flits expected.
        let rate = flits as f64 / (16.0 * 10_000.0);
        assert!(
            (rate - 0.2).abs() < 0.02,
            "offered rate {rate} should approximate 0.2"
        );
    }

    #[test]
    fn sources_stop_at_horizon() {
        let cfg = TrafficConfig {
            stop_at: 100,
            load: 0.5,
            ..TrafficConfig::default()
        };
        let mut src = TrafficSource::new(topo(), cfg);
        let mut after = 0;
        for now in 0..1000 {
            let msgs = src.poll(now);
            if now >= 100 {
                after += msgs.len();
            }
        }
        assert_eq!(after, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let gen = |seed| {
            let cfg = TrafficConfig {
                seed,
                stop_at: 500,
                ..TrafficConfig::default()
            };
            let mut src = TrafficSource::new(topo(), cfg);
            let mut v = Vec::new();
            for now in 0..500 {
                for m in src.poll(now) {
                    v.push((m.id.0, m.src.0, m.dest.0, m.len_flits, m.created_at));
                }
            }
            v
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn message_ids_unique() {
        let cfg = TrafficConfig {
            load: 0.9,
            stop_at: 300,
            ..TrafficConfig::default()
        };
        let mut src = TrafficSource::new(topo(), cfg);
        let mut seen = std::collections::HashSet::new();
        for now in 0..300 {
            for m in src.poll(now) {
                assert!(seen.insert(m.id), "duplicate id {:?}", m.id);
                assert_eq!(m.created_at, now);
            }
        }
        assert_eq!(seen.len() as u64, src.generated());
    }
}
