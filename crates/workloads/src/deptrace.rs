//! Dependency-aware message traces.
//!
//! A [`DepTrace`] is a message script whose entries carry explicit
//! *dependency edges*: message `B` with `deps = [A]` must not be injected
//! before `A` has been **delivered**. This is the natural encoding of
//! application communication — a reduce step cannot start before its
//! children's partial sums arrive, phase `p+1` of a sweep waits for phase
//! `p` — and it makes replay *self-paced*: the trace adapts to whatever
//! latency the network under test exhibits instead of firing on a wall
//! clock recorded on some other machine.
//!
//! Semantics:
//!
//! * a message's `created_at` is its **earliest release** cycle — it is
//!   released at `max(created_at, last dependency delivered + 1)`;
//! * dependencies are by message id and must reference messages present
//!   in the same trace;
//! * the dependency graph must be acyclic — [`DepTrace::validate`]
//!   rejects cycles (a cyclic trace can never finish replaying).
//!
//! The replay loop lives in `wavesim-bench::runner::run_dep_trace`;
//! persistence (versioned JSON / JSONL) in [`crate::trace_io`];
//! generators for classic collectives in [`crate::collectives`].

use std::collections::HashMap;

use wavesim_network::Message;
use wavesim_sim::Cycle;

/// One message of a dependency trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DepMessage {
    /// The message itself (`created_at` = earliest release cycle).
    pub msg: Message,
    /// Ids of messages that must be *delivered* before this one releases.
    pub deps: Vec<u64>,
}

/// A dependency-ordered message script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepTrace {
    /// The messages, in file order. Order carries no semantics beyond
    /// deterministic tie-breaking; release order is set by `created_at`
    /// and the dependency edges.
    pub messages: Vec<DepMessage>,
}

impl DepTrace {
    /// Builds a trace and validates it in one step.
    ///
    /// # Errors
    /// Same conditions as [`DepTrace::validate`].
    pub fn new(messages: Vec<DepMessage>) -> Result<Self, String> {
        let t = Self { messages };
        t.validate()?;
        Ok(t)
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the trace has no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Latest earliest-release cycle in the trace (0 when empty). Actual
    /// replay can extend far past this: dependent messages release only
    /// when their dependencies deliver.
    #[must_use]
    pub fn horizon(&self) -> Cycle {
        self.messages
            .iter()
            .map(|m| m.msg.created_at)
            .max()
            .unwrap_or(0)
    }

    /// Messages with no dependencies (the replay's initially-ready set).
    #[must_use]
    pub fn num_roots(&self) -> usize {
        self.messages.iter().filter(|m| m.deps.is_empty()).count()
    }

    /// Checks the trace invariants: unique message ids, every dependency
    /// referencing an id present in the trace, and an acyclic dependency
    /// graph (checked with Kahn's algorithm, so the error names a message
    /// that sits on a cycle).
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(self.messages.len());
        for (i, m) in self.messages.iter().enumerate() {
            if index.insert(m.msg.id.0, i).is_some() {
                return Err(format!("duplicate message id {}", m.msg.id.0));
            }
        }
        // Kahn's topological sort over dep -> dependent edges. Anything
        // left with a positive indegree afterwards sits on (or behind) a
        // dependency cycle.
        let mut indegree = vec![0u32; self.messages.len()];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); self.messages.len()];
        for (i, m) in self.messages.iter().enumerate() {
            for &dep in &m.deps {
                let Some(&j) = index.get(&dep) else {
                    return Err(format!(
                        "message {} depends on unknown message id {dep}",
                        m.msg.id.0
                    ));
                };
                if j == i {
                    return Err(format!("message {} depends on itself", m.msg.id.0));
                }
                indegree[i] += 1;
                dependents[j].push(i as u32);
            }
        }
        let mut queue: Vec<u32> = (0..self.messages.len() as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut done = 0usize;
        while let Some(i) = queue.pop() {
            done += 1;
            for &d in &dependents[i as usize] {
                indegree[d as usize] -= 1;
                if indegree[d as usize] == 0 {
                    queue.push(d);
                }
            }
        }
        if done < self.messages.len() {
            let stuck = self
                .messages
                .iter()
                .enumerate()
                .filter(|&(i, _)| indegree[i] > 0)
                .map(|(_, m)| m.msg.id.0)
                .min()
                .expect("an unprocessed message exists");
            return Err(format!(
                "cyclic dependency: message {stuck} can never be released \
                 (it waits, directly or transitively, on itself)"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::NodeId;

    fn msg(id: u64, src: u32, dest: u32) -> Message {
        Message::new(id, NodeId(src), NodeId(dest), 8, 0)
    }

    fn dm(id: u64, src: u32, dest: u32, deps: &[u64]) -> DepMessage {
        DepMessage {
            msg: msg(id, src, dest),
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn diamond_is_valid() {
        let t = DepTrace::new(vec![
            dm(0, 0, 1, &[]),
            dm(1, 1, 2, &[0]),
            dm(2, 1, 3, &[0]),
            dm(3, 2, 0, &[1, 2]),
        ])
        .unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_roots(), 1);
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = DepTrace::new(vec![dm(7, 0, 1, &[]), dm(7, 1, 2, &[])]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn unknown_dependency_rejected() {
        let err = DepTrace::new(vec![dm(0, 0, 1, &[99])]).unwrap_err();
        assert!(err.contains("unknown"), "{err}");
    }

    #[test]
    fn self_dependency_rejected() {
        let err = DepTrace::new(vec![dm(0, 0, 1, &[0])]).unwrap_err();
        assert!(err.contains("itself"), "{err}");
    }

    #[test]
    fn two_cycle_rejected_with_clear_error() {
        let err = DepTrace::new(vec![dm(0, 0, 1, &[1]), dm(1, 1, 2, &[0])]).unwrap_err();
        assert!(err.contains("cyclic"), "{err}");
        assert!(err.contains('0'), "names a cycle member: {err}");
    }

    #[test]
    fn long_cycle_behind_valid_prefix_rejected() {
        // 0 is fine; 1 -> 2 -> 3 -> 1 is a cycle.
        let err = DepTrace::new(vec![
            dm(0, 0, 1, &[]),
            dm(1, 1, 2, &[3]),
            dm(2, 2, 3, &[1]),
            dm(3, 3, 0, &[2]),
        ])
        .unwrap_err();
        assert!(err.contains("cyclic"), "{err}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = DepTrace::default();
        assert!(t.validate().is_ok());
        assert!(t.is_empty());
        assert_eq!(t.horizon(), 0);
    }
}
