//! Closed-loop service traffic at scale.
//!
//! [`ServiceWorkload`] scales the request/reply idea of [`crate::reqrep`]
//! from "a few MSHR slots per node" to "millions of simulated clients":
//! each client runs the classic closed loop *think → request → service →
//! reply → think*, so offered load responds to latency the way real users
//! do — a congested network slows its own clients down instead of piling
//! up an unbounded backlog.
//!
//! The bookkeeping is **O(active)**, never O(clients):
//!
//! * unstarted clients are a pair of counters per node (assigned count +
//!   start cursor); start cycles are computed incrementally, spread
//!   evenly over the ramp window;
//! * in-flight requests live in a map keyed by message id (size = actual
//!   in-flight, which the closed loop bounds);
//! * thinking clients aggregate into `(wake_cycle, node) → count`
//!   buckets — with a fixed think time, all clients of a node whose
//!   replies land in the same cycle share one bucket.
//!
//! Per-tenant attribution needs no extra machinery: every request keeps
//! its client's `(src, dst)` pair, so `analyze::flows`' keying breaks a
//! traced service run down by tenant for free.
//!
//! The driving loop lives in `wavesim-bench::runner::run_service`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use wavesim_network::Message;
use wavesim_sim::{Cycle, SimRng};
use wavesim_topology::{NodeId, Topology};

use crate::patterns::{partners_of, pick_partner};

/// Reply-id tag (shared convention with [`crate::reqrep`]).
const REPLY_BIT: u64 = 1 << 63;

/// Configuration of the service workload.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Total simulated clients, spread round-robin over the nodes.
    /// Millions are fine: memory scales with *active* requests, not this.
    pub clients: u64,
    /// Hot server nodes per client node.
    pub partners: u8,
    /// Probability a request targets a hot server (vs uniform).
    pub locality: f64,
    /// Request length in flits.
    pub req_len: u32,
    /// Reply length in flits.
    pub reply_len: u32,
    /// Cycles the server takes to service a request.
    pub service_time: u64,
    /// Think time between a completed reply and the client's next request.
    pub think_time: u64,
    /// Client start times are spread evenly over `[0, ramp)` so a large
    /// population does not fire as one cycle-0 burst. `0` = all at once.
    pub ramp: Cycle,
    /// RNG seed.
    pub seed: u64,
    /// No new requests at or after this cycle (in-flight ones finish).
    pub stop_at: Cycle,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            clients: 1024,
            partners: 3,
            locality: 0.8,
            req_len: 4,
            reply_len: 64,
            service_time: 20,
            think_time: 200,
            ramp: 200,
            seed: 1,
            stop_at: Cycle::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    client: NodeId,
    issued_at: Cycle,
}

/// What a delivery meant to the workload.
#[derive(Debug, Clone)]
pub enum ServiceEvent {
    /// A request reached its server: send this reply at the given cycle.
    Reply(Cycle, Message),
    /// A reply reached its client: round trip complete.
    Done {
        /// Cycle the request was issued (for round-trip accounting).
        issued_at: Cycle,
    },
}

/// The scalable closed-loop generator.
pub struct ServiceWorkload {
    topo: Topology,
    cfg: ServiceConfig,
    rng: SimRng,
    /// Clients assigned to each node (base + remainder distribution).
    assigned: Vec<u64>,
    /// Per node: how many assigned clients have issued their first
    /// request. Start cycle of client `k` is `k * ramp / assigned`.
    started: Vec<u64>,
    /// Thinking clients, aggregated: count per (wake cycle, node).
    wake_counts: HashMap<(Cycle, u32), u64>,
    wakeups: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// In-flight requests and replies by message id.
    pending: HashMap<u64, PendingReq>,
    thinking: u64,
    next_id: u64,
    requests_issued: u64,
    completed: u64,
    retired: u64,
}

impl ServiceWorkload {
    /// Builds the workload over `topo`.
    ///
    /// # Panics
    /// Panics on a topology with fewer than two nodes or zero-length
    /// messages.
    #[must_use]
    pub fn new(topo: Topology, cfg: ServiceConfig) -> Self {
        let n = topo.num_nodes();
        assert!(n >= 2, "service traffic needs at least two nodes");
        assert!(cfg.req_len >= 1 && cfg.reply_len >= 1);
        let base = cfg.clients / u64::from(n);
        let rem = cfg.clients % u64::from(n);
        let assigned = (0..u64::from(n))
            .map(|i| base + u64::from(i < rem))
            .collect();
        Self {
            rng: SimRng::new(cfg.seed ^ 0x5E21_1CE5),
            assigned,
            started: vec![0; n as usize],
            wake_counts: HashMap::new(),
            wakeups: BinaryHeap::new(),
            pending: HashMap::new(),
            thinking: 0,
            next_id: 0,
            requests_issued: 0,
            completed: 0,
            retired: 0,
            topo,
            cfg,
        }
    }

    fn draw_server(&mut self, src: NodeId) -> NodeId {
        if self.rng.chance(self.cfg.locality) {
            let ps = partners_of(&self.topo, src, self.cfg.partners, self.cfg.seed);
            if !ps.is_empty() {
                return ps[pick_partner(&mut self.rng, ps.len())];
            }
        }
        let n = u64::from(self.topo.num_nodes());
        let mut d = NodeId(self.rng.below(n) as u32);
        while d == src {
            d = NodeId(self.rng.below(n) as u32);
        }
        d
    }

    fn issue(&mut self, node: NodeId, now: Cycle, out: &mut Vec<Message>) {
        let server = self.draw_server(node);
        let id = self.next_id;
        self.next_id += 1;
        self.requests_issued += 1;
        self.pending.insert(
            id,
            PendingReq {
                client: node,
                issued_at: now,
            },
        );
        out.push(Message::new(id, node, server, self.cfg.req_len, now));
    }

    /// Requests to inject at cycle `now` (call once per cycle with
    /// non-decreasing `now`): newly-ramped clients plus clients whose
    /// think time elapsed. After `stop_at`, waking clients retire instead
    /// of re-issuing.
    pub fn poll(&mut self, now: Cycle) -> Vec<Message> {
        let mut out = Vec::new();
        let open = now < self.cfg.stop_at;
        // Ramp-up: start cycles spread over [0, ramp).
        if open {
            for i in 0..self.started.len() {
                let total = self.assigned[i];
                while self.started[i] < total
                    && self.started[i] * self.cfg.ramp / total.max(1) <= now
                {
                    self.started[i] += 1;
                    self.issue(NodeId(i as u32), now, &mut out);
                }
            }
        }
        // Wake-ups, in deterministic (cycle, node) order.
        while let Some(&Reverse((t, node))) = self.wakeups.peek() {
            if t > now {
                break;
            }
            self.wakeups.pop();
            let count = self
                .wake_counts
                .remove(&(t, node))
                .expect("wake bucket exists");
            self.thinking -= count;
            if open {
                for _ in 0..count {
                    self.issue(NodeId(node), now, &mut out);
                }
            } else {
                self.retired += count;
            }
        }
        out
    }

    /// Feeds a delivery back into the closed loop.
    ///
    /// # Panics
    /// Panics on a message id this workload never issued.
    pub fn on_delivered(&mut self, msg_id: u64, dest: NodeId, now: Cycle) -> ServiceEvent {
        let entry = self
            .pending
            .remove(&msg_id)
            .expect("delivery of a message this workload never issued");
        if msg_id & REPLY_BIT == 0 {
            let reply_id = msg_id | REPLY_BIT;
            let send_at = now + self.cfg.service_time;
            self.pending.insert(reply_id, entry);
            ServiceEvent::Reply(
                send_at,
                Message::new(reply_id, dest, entry.client, self.cfg.reply_len, send_at),
            )
        } else {
            debug_assert_eq!(entry.client, dest, "reply delivered to its client");
            self.completed += 1;
            let wake = now + self.cfg.think_time;
            let key = (wake, entry.client.0);
            let slot = self.wake_counts.entry(key).or_insert(0);
            if *slot == 0 {
                self.wakeups.push(Reverse(key));
            }
            *slot += 1;
            self.thinking += 1;
            ServiceEvent::Done {
                issued_at: entry.issued_at,
            }
        }
    }

    /// Requests issued so far.
    #[must_use]
    pub fn requests_issued(&self) -> u64 {
        self.requests_issued
    }

    /// Round trips completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests or replies currently in the network (or in service).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Clients currently in their think phase.
    #[must_use]
    pub fn thinking(&self) -> u64 {
        self.thinking
    }

    /// Clients that woke after `stop_at` and left the system.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(&[4, 4])
    }

    #[test]
    fn ramp_spreads_starts_and_wakeups_aggregate() {
        let mut w = ServiceWorkload::new(
            topo(),
            ServiceConfig {
                clients: 160,
                ramp: 100,
                think_time: 50,
                ..ServiceConfig::default()
            },
        );
        let first = w.poll(0);
        assert!(
            !first.is_empty() && first.len() < 160,
            "ramp spreads the start burst: {} at cycle 0",
            first.len()
        );
        let mut total = first.len();
        for now in 1..100 {
            total += w.poll(now).len();
        }
        assert_eq!(total, 160, "every client started inside the ramp");
        assert_eq!(w.in_flight(), 160);
    }

    #[test]
    fn closed_loop_round_trip_and_think_rewake() {
        let mut w = ServiceWorkload::new(
            topo(),
            ServiceConfig {
                clients: 1,
                ramp: 0,
                service_time: 7,
                think_time: 30,
                ..ServiceConfig::default()
            },
        );
        let reqs = w.poll(0);
        assert_eq!(reqs.len(), 1);
        let r = reqs[0];
        let ServiceEvent::Reply(send_at, reply) = w.on_delivered(r.id.0, r.dest, 10) else {
            panic!("request delivery yields a reply");
        };
        assert_eq!(send_at, 17);
        assert_eq!((reply.src, reply.dest), (r.dest, r.src));
        let ServiceEvent::Done { issued_at } = w.on_delivered(reply.id.0, reply.dest, 25) else {
            panic!("reply delivery completes the round trip");
        };
        assert_eq!(issued_at, 0);
        assert_eq!((w.completed(), w.thinking()), (1, 1));
        // Nothing before the wake cycle, one request at it.
        assert!(w.poll(54).is_empty());
        let again = w.poll(55);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].src, r.src);
        assert_eq!(w.thinking(), 0);
    }

    #[test]
    fn stop_at_retires_waking_clients() {
        let mut w = ServiceWorkload::new(
            topo(),
            ServiceConfig {
                clients: 4,
                ramp: 0,
                think_time: 5,
                stop_at: 50,
                ..ServiceConfig::default()
            },
        );
        let reqs = w.poll(0);
        for r in &reqs {
            let ServiceEvent::Reply(_, reply) = w.on_delivered(r.id.0, r.dest, 10) else {
                panic!()
            };
            let ServiceEvent::Done { .. } = w.on_delivered(reply.id.0, reply.dest, 60) else {
                panic!()
            };
        }
        // Wakes land at 65, after stop_at: all four retire, none re-issue.
        assert!(w.poll(65).is_empty());
        assert_eq!(w.retired(), 4);
        assert_eq!(w.thinking(), 0);
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn millions_of_clients_fit_in_o_active_state() {
        // 2M clients on 16 nodes: construction is O(nodes), and polling
        // the first cycle of a long ramp only materializes that cycle's
        // share of starts.
        let mut w = ServiceWorkload::new(
            topo(),
            ServiceConfig {
                clients: 2_000_000,
                ramp: 1_000_000,
                ..ServiceConfig::default()
            },
        );
        // 125k clients per node over a 1M-cycle ramp: one start per node
        // every 8 cycles.
        let first = w.poll(0);
        assert_eq!(first.len(), 16);
        for now in 1..8 {
            assert!(w.poll(now).is_empty());
        }
        assert_eq!(w.poll(8).len(), 16);
        assert_eq!(w.in_flight(), 32);
        assert_eq!(w.requests_issued(), 32);
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let build = || {
            ServiceWorkload::new(
                topo(),
                ServiceConfig {
                    clients: 100,
                    ramp: 10,
                    ..ServiceConfig::default()
                },
            )
        };
        let (mut a, mut b) = (build(), build());
        for now in 0..20 {
            assert_eq!(a.poll(now), b.poll(now));
        }
    }
}
