//! # wavesim-workloads — traffic for wave-switched networks
//!
//! Substrate #11: synthetic workload generators standing in for the
//! application traces the paper's era used (none survive; DESIGN.md
//! documents the substitution). Four families:
//!
//! * [`patterns`] — the classical spatial patterns of the interconnect
//!   literature (uniform, transpose, bit-reversal, bit-complement,
//!   hotspot, nearest-neighbour) plus a **hot-pairs** pattern whose
//!   `locality` knob dials the temporal communication locality that wave
//!   switching exploits (§1: "in many cases, this locality is not only
//!   spatial but also temporal");
//! * [`traffic`] — an open-loop Bernoulli injection process per node with
//!   configurable offered load and message-length distribution;
//! * [`carp`] — instruction traces for the Compiler-Aided Routing
//!   Protocol: timed `ESTABLISH` / `SEND` / `TEARDOWN` op streams shaped
//!   like the phased communication of stencil and pairwise-exchange
//!   kernels (the "compiler" of §3.2, modelled as a trace generator);
//! * [`faults`] — static lane-fault plans for the E8 resilience
//!   experiment and timed dynamic fail/repair schedules for E14;
//! * [`deptrace`] / [`collectives`] — dependency-aware message traces
//!   (release gated on upstream deliveries) and the classic collectives
//!   (all-to-all, reduce/broadcast trees, phased pattern sweeps) emitted
//!   in that form, replayed by `wavesim-bench`'s `run_dep_trace`;
//! * [`service`] — closed-loop service traffic with O(active)
//!   bookkeeping, scaling the [`reqrep`] idea to millions of clients.

#![warn(missing_docs)]

pub mod carp;
pub mod collectives;
pub mod deptrace;
pub mod faults;
pub mod patterns;
pub mod reqrep;
pub mod service;
pub mod trace_io;
pub mod traffic;

pub use carp::{CarpOp, CarpTrace, PairwiseSpec};
pub use deptrace::{DepMessage, DepTrace};
pub use faults::{FaultPlan, FaultSchedule, FaultScheduleEvent};
pub use patterns::{pattern_pairs, TrafficPattern};
pub use reqrep::{ReqRepConfig, ReqRepWorkload};
pub use service::{ServiceConfig, ServiceEvent, ServiceWorkload};
pub use traffic::{LengthDist, TrafficConfig, TrafficSource};
