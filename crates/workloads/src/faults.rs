//! Fault models for the wave plane: static plans (E8) and timed dynamic
//! schedules (E14).
//!
//! The paper highlights that the MB-m probe protocol "is very resilient to
//! static faults in the network" (§2, citing ref \[12\]). [`FaultPlan`]
//! draws deterministic *static* fault sets — applied before traffic with
//! `WaveNetwork::inject_lane_fault` — where each wave lane fails
//! independently with a configured probability. [`FaultSchedule`] extends
//! the model to *dynamic* faults: timed fail **and** repair events,
//! applied mid-run with `WaveNetwork::schedule_fault`, where failing a
//! reserved lane tears the victim circuit down and (CLRP) triggers a
//! bounded re-establishment. Both are returned as `(link, switch)` pairs;
//! neither depends on `wavesim-core`.
//!
//! Only the wave plane faults: the wormhole fallback uses deterministic
//! routing that cannot route around faults, so (as in the paper, where
//! fault tolerance is a property of PCS, not of the wormhole plane) the
//! `S0` network is assumed fault-free. DESIGN.md records this scoping
//! (§7 covers the dynamic model).

use wavesim_sim::{Cycle, SimRng};
use wavesim_topology::{LinkId, Topology};

/// A deterministic set of faulty wave lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faulty `(link, switch)` lanes; switch is 1-based.
    pub lanes: Vec<(LinkId, u8)>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self { lanes: Vec::new() }
    }

    /// Each lane of each valid link fails independently with probability
    /// `rate`, drawn deterministically from `seed`.
    #[must_use]
    pub fn random_lanes(topo: &Topology, k: u8, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate is a probability");
        let mut rng = SimRng::new(seed ^ 0xFA17_FA17);
        let mut lanes = Vec::new();
        for link in topo.links() {
            for s in 1..=k {
                if rng.chance(rate) {
                    lanes.push((link, s));
                }
            }
        }
        Self { lanes }
    }

    /// Fails every lane (all switches) of `count` whole links — the
    /// harsher broken-cable model. `count` is clamped to the number of
    /// links the topology actually has; read the achieved count back with
    /// [`FaultPlan::faulted_links`] (it used to be silently lower when
    /// `count` overshot).
    #[must_use]
    pub fn random_links(topo: &Topology, k: u8, count: usize, seed: u64) -> Self {
        let mut links: Vec<LinkId> = topo.links().collect();
        let mut rng = SimRng::new(seed ^ 0xFA17_0000);
        rng.shuffle(&mut links);
        let count = count.min(links.len());
        let mut lanes = Vec::new();
        for link in links.into_iter().take(count) {
            for s in 1..=k {
                lanes.push((link, s));
            }
        }
        Self { lanes }
    }

    /// Number of faulty lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lanes are faulty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of distinct links with at least one faulty lane — for
    /// [`FaultPlan::random_links`], the number of whole links actually
    /// faulted after clamping.
    #[must_use]
    pub fn faulted_links(&self) -> usize {
        let mut links: Vec<LinkId> = self.lanes.iter().map(|&(l, _)| l).collect();
        links.sort_unstable_by_key(|l| l.0);
        links.dedup();
        links.len()
    }
}

/// One timed dynamic fault event. Lane variants hit a single
/// `(link, switch)` wave lane; link variants hit every lane of the link
/// (broken cable / cable replaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultScheduleEvent {
    /// One wave lane of `link` fails.
    FailLane(LinkId, u8),
    /// A failed wave lane returns to service.
    RepairLane(LinkId, u8),
    /// Every wave lane of `link` fails.
    FailLink(LinkId),
    /// Every wave lane of `link` returns to service.
    RepairLink(LinkId),
}

/// A deterministic timed schedule of dynamic fail/repair events, applied
/// mid-run with `WaveNetwork::schedule_fault`. Events are kept sorted by
/// `(cycle, event)` so application order — and therefore the simulation —
/// is a pure function of the schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// `(cycle, event)` pairs, sorted by cycle (ties by event order).
    pub events: Vec<(Cycle, FaultScheduleEvent)>,
}

impl FaultSchedule {
    /// No dynamic faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a whole-link fail/repair process: each link independently
    /// alternates up → down → up, with up-times geometric around `mtbf`
    /// (mean cycles between failures) and down-times geometric around
    /// `mttr` (mean cycles to repair), truncated at `horizon`. Each link
    /// uses its own split RNG stream, so the schedule is deterministic in
    /// `seed` and independent of link iteration order.
    ///
    /// # Panics
    /// Panics unless `mtbf` and `mttr` are both `>= 1`.
    #[must_use]
    pub fn random_mtbf(topo: &Topology, mtbf: u64, mttr: u64, horizon: Cycle, seed: u64) -> Self {
        assert!(mtbf >= 1, "mean time between failures must be >= 1 cycle");
        assert!(mttr >= 1, "mean time to repair must be >= 1 cycle");
        let root = SimRng::new(seed ^ 0xFA17_D41A);
        let mut events = Vec::new();
        for link in topo.links() {
            let mut rng = root.split(u64::from(link.0));
            let mut t: Cycle = 0;
            loop {
                t = t.saturating_add(rng.geometric(1.0 / mtbf as f64));
                if t >= horizon {
                    break;
                }
                events.push((t, FaultScheduleEvent::FailLink(link)));
                t = t.saturating_add(rng.geometric(1.0 / mttr as f64));
                if t >= horizon {
                    break;
                }
                events.push((t, FaultScheduleEvent::RepairLink(link)));
            }
        }
        events.sort_unstable();
        Self { events }
    }

    /// Checks every event against `topo` and the wave-switch count `k`:
    /// links must exist, lane switches must be in `1..=k`, and events must
    /// be time-sorted.
    ///
    /// # Errors
    /// Describes the first invalid event.
    pub fn validate(&self, topo: &Topology, k: u8) -> Result<(), String> {
        for (i, &(at, ev)) in self.events.iter().enumerate() {
            let (link, switch) = match ev {
                FaultScheduleEvent::FailLane(l, s) | FaultScheduleEvent::RepairLane(l, s) => {
                    (l, Some(s))
                }
                FaultScheduleEvent::FailLink(l) | FaultScheduleEvent::RepairLink(l) => (l, None),
            };
            if !topo.has_link(link) {
                return Err(format!(
                    "fault event {i} (cycle {at}): link {} is not in the topology",
                    link.0
                ));
            }
            if let Some(s) = switch {
                if s < 1 || s > k {
                    return Err(format!(
                        "fault event {i} (cycle {at}): switch {s} out of range 1..={k}"
                    ));
                }
            }
        }
        if !self.events.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err("fault schedule is not time-sorted".into());
        }
        Ok(())
    }

    /// Expands the schedule to per-lane actions: `(cycle, fail?, link,
    /// switch)` with link events fanned out over switches `1..=k`, in
    /// schedule order. The composition root maps these onto
    /// `WaveNetwork::schedule_fault` events.
    #[must_use]
    pub fn lane_actions(&self, k: u8) -> Vec<(Cycle, bool, LinkId, u8)> {
        let mut out = Vec::new();
        for &(at, ev) in &self.events {
            match ev {
                FaultScheduleEvent::FailLane(l, s) => out.push((at, true, l, s)),
                FaultScheduleEvent::RepairLane(l, s) => out.push((at, false, l, s)),
                FaultScheduleEvent::FailLink(l) => {
                    out.extend((1..=k).map(|s| (at, true, l, s)));
                }
                FaultScheduleEvent::RepairLink(l) => {
                    out.extend((1..=k).map(|s| (at, false, l, s)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(&[8, 8])
    }

    #[test]
    fn zero_rate_is_empty() {
        let p = FaultPlan::random_lanes(&topo(), 2, 0.0, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn full_rate_faults_everything() {
        let t = topo();
        let p = FaultPlan::random_lanes(&t, 2, 1.0, 1);
        assert_eq!(p.len(), t.links().count() * 2);
    }

    #[test]
    fn rate_is_approximated() {
        let t = topo();
        let total = t.links().count() * 2;
        let p = FaultPlan::random_lanes(&t, 2, 0.1, 7);
        let frac = p.len() as f64 / total as f64;
        assert!(frac > 0.05 && frac < 0.16, "fault fraction {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        let t = topo();
        let a = FaultPlan::random_lanes(&t, 2, 0.2, 3);
        let b = FaultPlan::random_lanes(&t, 2, 0.2, 3);
        let c = FaultPlan::random_lanes(&t, 2, 0.2, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn link_faults_cover_all_switches() {
        let t = topo();
        let p = FaultPlan::random_links(&t, 3, 5, 2);
        assert_eq!(p.len(), 15);
        // Every faulted link appears exactly 3 times (once per switch).
        let mut by_link = std::collections::HashMap::new();
        for (l, _) in &p.lanes {
            *by_link.entry(*l).or_insert(0) += 1;
        }
        assert_eq!(by_link.len(), 5);
        assert!(by_link.values().all(|&c| c == 3));
    }

    #[test]
    fn only_valid_links_are_faulted() {
        let t = Topology::mesh(&[4, 4]); // mesh has boundary slots
        let p = FaultPlan::random_lanes(&t, 1, 1.0, 1);
        for (l, _) in &p.lanes {
            assert!(t.has_link(*l));
        }
    }

    #[test]
    fn overshooting_link_count_clamps_and_reports() {
        let t = topo();
        let total = t.links().count();
        let p = FaultPlan::random_links(&t, 2, total + 100, 3);
        assert_eq!(p.faulted_links(), total, "clamped to every link");
        assert_eq!(p.len(), total * 2);
        let exact = FaultPlan::random_links(&t, 2, 7, 3);
        assert_eq!(exact.faulted_links(), 7);
    }

    #[test]
    fn mtbf_schedule_is_deterministic_and_sorted() {
        let t = topo();
        let a = FaultSchedule::random_mtbf(&t, 5_000, 500, 20_000, 11);
        let b = FaultSchedule::random_mtbf(&t, 5_000, 500, 20_000, 11);
        let c = FaultSchedule::random_mtbf(&t, 5_000, 500, 20_000, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].0 <= w[1].0));
        a.validate(&t, 2).expect("drawn from the topology");
    }

    #[test]
    fn mtbf_schedule_alternates_fail_repair_per_link() {
        let t = topo();
        let sched = FaultSchedule::random_mtbf(&t, 2_000, 300, 50_000, 4);
        let mut down = std::collections::HashSet::new();
        for &(_, ev) in &sched.events {
            match ev {
                FaultScheduleEvent::FailLink(l) => {
                    assert!(down.insert(l), "link {} failed while down", l.0);
                }
                FaultScheduleEvent::RepairLink(l) => {
                    assert!(down.remove(&l), "link {} repaired while up", l.0);
                }
                other => panic!("mtbf schedules are whole-link: {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_bad_events() {
        let t = Topology::mesh(&[4, 4]);
        let bogus_link = LinkId(u32::MAX);
        let sched = FaultSchedule {
            events: vec![(5, FaultScheduleEvent::FailLink(bogus_link))],
        };
        assert!(sched.validate(&t, 2).unwrap_err().contains("topology"));
        let good_link = t.links().next().unwrap();
        let sched = FaultSchedule {
            events: vec![(5, FaultScheduleEvent::FailLane(good_link, 3))],
        };
        assert!(sched.validate(&t, 2).unwrap_err().contains("switch"));
        let sched = FaultSchedule {
            events: vec![
                (9, FaultScheduleEvent::FailLink(good_link)),
                (5, FaultScheduleEvent::RepairLink(good_link)),
            ],
        };
        assert!(sched.validate(&t, 2).unwrap_err().contains("sorted"));
    }

    #[test]
    fn lane_actions_fan_links_out_over_switches() {
        let t = Topology::mesh(&[4, 4]);
        let link = t.links().next().unwrap();
        let sched = FaultSchedule {
            events: vec![
                (2, FaultScheduleEvent::FailLink(link)),
                (7, FaultScheduleEvent::RepairLane(link, 2)),
            ],
        };
        assert_eq!(
            sched.lane_actions(3),
            vec![
                (2, true, link, 1),
                (2, true, link, 2),
                (2, true, link, 3),
                (7, false, link, 2),
            ]
        );
    }
}
