//! Static fault plans for the wave plane (experiment E8).
//!
//! The paper highlights that the MB-m probe protocol "is very resilient to
//! static faults in the network" (§2, citing ref \[12\]). This module draws
//! deterministic fault sets: each wave lane fails independently with a
//! configured probability. Faults are returned as `(link, switch)` pairs;
//! `wavesim-core` applies them with `WaveNetwork::inject_lane_fault`.
//!
//! Only the wave plane faults: the wormhole fallback uses deterministic
//! routing that cannot route around faults, so (as in the paper, where
//! fault tolerance is a property of PCS, not of the wormhole plane) the
//! `S0` network is assumed fault-free. DESIGN.md records this scoping.

use wavesim_sim::SimRng;
use wavesim_topology::{LinkId, Topology};

/// A deterministic set of faulty wave lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faulty `(link, switch)` lanes; switch is 1-based.
    pub lanes: Vec<(LinkId, u8)>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self { lanes: Vec::new() }
    }

    /// Each lane of each valid link fails independently with probability
    /// `rate`, drawn deterministically from `seed`.
    #[must_use]
    pub fn random_lanes(topo: &Topology, k: u8, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate is a probability");
        let mut rng = SimRng::new(seed ^ 0xFA17_FA17);
        let mut lanes = Vec::new();
        for link in topo.links() {
            for s in 1..=k {
                if rng.chance(rate) {
                    lanes.push((link, s));
                }
            }
        }
        Self { lanes }
    }

    /// Fails every lane (all switches) of `count` whole links — the
    /// harsher broken-cable model.
    #[must_use]
    pub fn random_links(topo: &Topology, k: u8, count: usize, seed: u64) -> Self {
        let mut links: Vec<LinkId> = topo.links().collect();
        let mut rng = SimRng::new(seed ^ 0xFA17_0000);
        rng.shuffle(&mut links);
        let mut lanes = Vec::new();
        for link in links.into_iter().take(count) {
            for s in 1..=k {
                lanes.push((link, s));
            }
        }
        Self { lanes }
    }

    /// Number of faulty lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lanes are faulty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(&[8, 8])
    }

    #[test]
    fn zero_rate_is_empty() {
        let p = FaultPlan::random_lanes(&topo(), 2, 0.0, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn full_rate_faults_everything() {
        let t = topo();
        let p = FaultPlan::random_lanes(&t, 2, 1.0, 1);
        assert_eq!(p.len(), t.links().count() * 2);
    }

    #[test]
    fn rate_is_approximated() {
        let t = topo();
        let total = t.links().count() * 2;
        let p = FaultPlan::random_lanes(&t, 2, 0.1, 7);
        let frac = p.len() as f64 / total as f64;
        assert!(frac > 0.05 && frac < 0.16, "fault fraction {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        let t = topo();
        let a = FaultPlan::random_lanes(&t, 2, 0.2, 3);
        let b = FaultPlan::random_lanes(&t, 2, 0.2, 3);
        let c = FaultPlan::random_lanes(&t, 2, 0.2, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn link_faults_cover_all_switches() {
        let t = topo();
        let p = FaultPlan::random_links(&t, 3, 5, 2);
        assert_eq!(p.len(), 15);
        // Every faulted link appears exactly 3 times (once per switch).
        let mut by_link = std::collections::HashMap::new();
        for (l, _) in &p.lanes {
            *by_link.entry(*l).or_insert(0) += 1;
        }
        assert_eq!(by_link.len(), 5);
        assert!(by_link.values().all(|&c| c == 3));
    }

    #[test]
    fn only_valid_links_are_faulted() {
        let t = Topology::mesh(&[4, 4]); // mesh has boundary slots
        let p = FaultPlan::random_lanes(&t, 1, 1.0, 1);
        for (l, _) in &p.lanes {
            assert!(t.has_link(*l));
        }
    }
}
