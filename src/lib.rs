//! # wavesim — wave switching, reproduced
//!
//! Umbrella crate for the reproduction of *“Deadlock- and Livelock-Free
//! Routing Protocols for Wave Switching”* (Duato, López, Yalamanchili,
//! IPPS 1997). Re-exports every subsystem crate under one roof so examples
//! and downstream users can depend on a single package.
//!
//! * [`sim`] — discrete-event simulation kernel;
//! * [`topology`] — k-ary n-cube meshes/tori and hypercubes plus
//!   deadlock-free wormhole routing functions;
//! * [`network`] — flit-level wormhole fabric with virtual channels and
//!   credit-based flow control;
//! * [`core`] — the paper's contribution: the hybrid wave router, PCS
//!   control unit, MB-m probe protocol, circuit cache, and the CLRP and
//!   CARP routing protocols;
//! * [`workloads`] — synthetic traffic, locality generators, CARP traces;
//! * [`verify`] — deadlock/livelock detectors and invariant audits;
//! * [`model`] — exhaustive protocol model checker and schedule fuzzer
//!   (machine-checks Theorems 1–4 on small fabrics);
//! * [`trace`] — flight-recorder observability: structured trace records,
//!   Perfetto export, metrics exposition, stall post-mortems;
//! * [`json`] — the dependency-free JSON reader/writer the artifacts use.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use wavesim_core as core;
pub use wavesim_json as json;
pub use wavesim_model as model;
pub use wavesim_network as network;
pub use wavesim_sim as sim;
pub use wavesim_topology as topology;
pub use wavesim_trace as trace;
pub use wavesim_verify as verify;
pub use wavesim_workloads as workloads;
