//! DSM-style communication locality: the workload the paper's introduction
//! motivates. Distributed-shared-memory nodes talk repeatedly to a few hot
//! partners (home nodes of their working set); wave switching turns that
//! temporal locality into pre-established circuits.
//!
//! Runs the same hot-pairs traffic through a plain wormhole network and
//! through CLRP, and prints the latency and circuit statistics side by
//! side.
//!
//! ```sh
//! cargo run --release --example dsm_locality
//! ```

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::sim::stats::Accumulator;
use wavesim::topology::Topology;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn run(protocol: ProtocolKind, locality: f64) -> (f64, f64, u64) {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol,
            ..WaveConfig::default()
        },
    );
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.15,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality,
            },
            len: LengthDist::Bimodal {
                short: 8,  // coherence commands
                long: 128, // cache-line streams / page moves
                frac_long: 0.3,
            },
            seed: 42,
            stop_at: 20_000,
        },
    );
    let mut lat = Accumulator::new();
    let mut circuit_msgs = 0u64;
    let mut now = 0;
    loop {
        for m in src.poll(now) {
            net.send(now, m);
        }
        if now >= 20_000 && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            lat.record(d.latency() as f64);
            if d.mode == wavesim::network::message::DeliveryMode::Circuit {
                circuit_msgs += 1;
            }
        }
        now += 1;
        assert!(now < 2_000_000, "run did not drain");
    }
    (lat.mean(), net.stats().hit_rate(), circuit_msgs)
}

fn main() {
    println!("DSM hot-partner traffic on an 8x8 mesh (bimodal 8/128-flit messages)");
    println!();
    println!("locality   wormhole lat   CLRP lat   CLRP hit rate   circuit msgs");
    for &loc in &[0.0, 0.5, 0.9] {
        let (wh, _, _) = run(ProtocolKind::WormholeOnly, loc);
        let (wv, hits, cmsgs) = run(ProtocolKind::Clrp, loc);
        println!(
            "   {loc:>4.2}      {wh:>8.1}     {wv:>8.1}        {:>5.1}%        {cmsgs:>6}",
            hits * 100.0
        );
    }
    println!();
    println!("Higher locality -> higher circuit-cache hit rate -> CLRP pulls ahead.");
}
