//! Quickstart: build a wave-switched 8×8 mesh, send one long message, and
//! watch the Cache-Like Routing Protocol (CLRP) establish a physical
//! circuit for it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::Message;
use wavesim::topology::{Coords, NodeId, Topology};

fn main() {
    // An 8x8 mesh of hybrid wave routers: each has a wormhole switch S0
    // (w = 2 virtual channels) and k = 2 wave-pipelined circuit switches
    // clocked 4x faster on half-width lanes (2 flits/cycle per circuit).
    let topo = Topology::mesh(&[8, 8]);
    let cfg = WaveConfig {
        protocol: ProtocolKind::Clrp,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(topo.clone(), cfg);

    let src = topo.node(Coords::new(&[0, 0]));
    let dest = topo.node(Coords::new(&[7, 5]));

    // First send: a CLRP cache miss. A probe walks the control network,
    // reserves one lane per hop, and the ack arms the circuit.
    net.send(0, Message::new(1, src, dest, 256, 0));
    let mut now = 0;
    while net.busy() && now < 100_000 {
        net.tick(now);
        now += 1;
    }

    // Second send, same destination: a cache hit — no probe, no routing,
    // no contention, straight onto the pre-established circuit.
    net.send(now, Message::new(2, src, dest, 256, now));
    while net.busy() && now < 200_000 {
        net.tick(now);
        now += 1;
    }

    let mut deliveries = net.drain_deliveries();
    deliveries.sort_by_key(|d| d.msg.id);
    println!("wave switching quickstart ({} nodes)", topo.num_nodes());
    for d in &deliveries {
        println!(
            "  message {:>2}: {:>4} flits  {:?}  latency {:>4} cycles",
            d.msg.id.0,
            d.msg.len_flits,
            d.mode,
            d.latency()
        );
    }
    let s = net.stats();
    println!(
        "  probes sent: {}   probe hops: {}   cache hits: {}   misses: {}",
        s.probes_sent, s.probe_hops, s.cache_hits, s.cache_misses
    );
    let entry = net
        .cache(src)
        .get(dest)
        .expect("the circuit stays cached for future sends");
    println!(
        "  cached circuit -> {}: switch S{}, established, used {} times",
        NodeId(dest.0),
        entry.switch,
        entry.uses
    );
    assert_eq!(deliveries.len(), 2);
    assert!(
        deliveries[1].latency() < deliveries[0].latency(),
        "the cache hit must be faster than the miss"
    );
    println!(
        "OK: circuit reuse cut latency from {} to {} cycles.",
        deliveries[0].latency(),
        deliveries[1].latency()
    );
}
