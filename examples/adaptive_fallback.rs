//! The routing-protocol knob of §2: "the routing protocols for wormhole
//! switching and PCS" are parameters of the architecture. This example
//! compares the two wormhole fall-back routing functions this library
//! implements — deterministic dimension-order routing vs Duato-style
//! minimal fully adaptive routing — under hotspot pressure, where
//! adaptivity is known to help.
//!
//! Both functions are certified deadlock-free first (the Dally–Seitz /
//! Duato conditions run mechanically), then raced on the same traffic.
//!
//! ```sh
//! cargo run --release --example adaptive_fallback
//! ```

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::WormholeConfig;
use wavesim::sim::stats::Accumulator;
use wavesim::topology::{RoutingKind, Topology};
use wavesim::verify::check_deadlock_freedom;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn run(kind: RoutingKind, w: u8) -> (f64, u64) {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::WormholeOnly,
            wormhole: WormholeConfig {
                w,
                routing: kind,
                ..WormholeConfig::default()
            },
            ..WaveConfig::default()
        },
    );
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.25,
            pattern: TrafficPattern::Hotspot {
                node: 27,
                fraction: 0.15,
            },
            len: LengthDist::Fixed(24),
            seed: 3,
            stop_at: 15_000,
        },
    );
    let mut lat = Accumulator::new();
    let mut delivered = 0u64;
    let mut now = 0;
    loop {
        for m in src.poll(now) {
            net.send(now, m);
        }
        if now >= 15_000 && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            lat.record(d.latency() as f64);
            delivered += 1;
        }
        now += 1;
        assert!(now < 5_000_000, "run did not drain");
    }
    (lat.mean(), delivered)
}

fn main() {
    let topo = Topology::mesh(&[8, 8]);
    println!("certifying both fall-back routing functions (paper §4 grounding):");
    for (name, kind, w) in [
        ("deterministic DOR", RoutingKind::Deterministic, 3u8),
        ("Duato adaptive   ", RoutingKind::Adaptive, 3),
    ] {
        let routing = kind.build(&topo, w);
        let rep = check_deadlock_freedom(&topo, routing.as_ref());
        println!(
            "  {name}: {} dependency edges -> {}",
            rep.edges,
            if rep.deadlock_free {
                "DEADLOCK-FREE"
            } else {
                "CYCLE!"
            }
        );
        assert!(rep.deadlock_free);
    }

    println!();
    println!("hotspot traffic (15% to one node), 8x8 mesh, w = 3 VCs:");
    let (det_lat, det_n) = run(RoutingKind::Deterministic, 3);
    let (ada_lat, ada_n) = run(RoutingKind::Adaptive, 3);
    println!("  deterministic DOR : {det_lat:>7.1} cycles avg ({det_n} delivered)");
    println!("  Duato adaptive    : {ada_lat:>7.1} cycles avg ({ada_n} delivered)");
    assert_eq!(det_n, ada_n, "same workload, same deliveries");
    println!();
    if ada_lat < det_lat {
        println!(
            "Adaptive routing routes around the hotspot: {:.1}% lower latency.",
            (1.0 - ada_lat / det_lat) * 100.0
        );
    } else {
        println!("At this load the deterministic function held its own.");
    }
}
