//! Fault tolerance of circuit establishment: the MB-m probe protocol
//! backtracks and misroutes around statically faulty wave lanes (§2 of
//! the paper: "this protocol is very resilient to static faults").
//!
//! Breaks a growing fraction of wave lanes and shows that (a) no message
//! is ever lost — wormhole fallback covers unreachable circuits — and
//! (b) circuit usage degrades gracefully rather than collapsing.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use wavesim::core::{LaneId, ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::message::DeliveryMode;
use wavesim::topology::Topology;
use wavesim::workloads::{FaultPlan, LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn run(fault_rate: f64) -> (usize, usize, usize, f64) {
    let topo = Topology::mesh(&[8, 8]);
    let cfg = WaveConfig {
        protocol: ProtocolKind::Clrp,
        misroutes: 3,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(topo.clone(), cfg);
    let plan = FaultPlan::random_lanes(&topo, cfg.k, fault_rate, 1234);
    for &(link, s) in &plan.lanes {
        net.inject_lane_fault(LaneId::new(link, s))
            .expect("fault plan matches topology");
    }

    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.1,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.85,
            },
            len: LengthDist::Fixed(64),
            seed: 7,
            stop_at: 15_000,
        },
    );

    let mut sent = 0usize;
    let mut delivered = 0usize;
    let mut on_circuit = 0usize;
    let mut now = 0;
    loop {
        for m in src.poll(now) {
            sent += 1;
            net.send(now, m);
        }
        if now >= 15_000 && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            delivered += 1;
            if d.mode == DeliveryMode::Circuit {
                on_circuit += 1;
            }
        }
        now += 1;
        assert!(now < 2_000_000, "run did not drain");
    }
    (
        sent,
        delivered,
        plan.len(),
        on_circuit as f64 / delivered.max(1) as f64,
    )
}

fn main() {
    println!("static wave-lane faults vs CLRP (8x8 mesh, m = 3 misroutes)");
    println!();
    println!("fault rate   faulty lanes   sent   delivered   circuit share");
    for &rate in &[0.0, 0.1, 0.25, 0.5] {
        let (sent, delivered, lanes, share) = run(rate);
        println!(
            "   {:>4.0}%        {lanes:>5}      {sent:>5}     {delivered:>5}        {:>5.1}%",
            rate * 100.0,
            share * 100.0
        );
        assert_eq!(sent, delivered, "faults must never lose messages");
    }
    println!();
    println!("Probes steer around faulty lanes; when no fault-free path exists the");
    println!("message silently falls back to wormhole switching — delivery stays 100%.");
}
