//! CARP driving a stencil kernel: the compiler knows each phase's
//! communication ahead of time, so it emits ESTABLISH instructions before
//! the data is ready ("prefetching" circuits, §3 of the paper), streams
//! the halo exchange over the circuits, and tears them down when the phase
//! ends.
//!
//! ```sh
//! cargo run --release --example carp_stencil
//! ```

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::message::DeliveryMode;
use wavesim::topology::Topology;
use wavesim::workloads::{CarpOp, CarpTrace};

fn main() {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Carp,
            ..WaveConfig::default()
        },
    );

    // 4 relaxation phases; each node sends 6 x 96-flit halo messages to
    // its +X and +Y neighbours per phase. The compiler leads each phase
    // with the ESTABLISH ops 300 cycles before the first send.
    let mut trace = CarpTrace::stencil(&topo, 4, 6, 96, 4_000, 300);
    let total_sends = trace.num_sends();
    println!(
        "stencil trace: {} ops, {} sends over {} cycles",
        trace.ops.len(),
        total_sends,
        trace.horizon()
    );

    let mut now = 0;
    let mut delivered = 0usize;
    let mut on_circuit = 0usize;
    let mut lat_sum = 0u64;
    let horizon = trace.horizon();
    loop {
        for op in trace.due(now) {
            match op {
                CarpOp::Establish { src, dest } => net.carp_establish(now, src, dest),
                CarpOp::Teardown { src, dest } => net.carp_teardown(now, src, dest),
                CarpOp::Send(m) => net.send(now, m),
            }
        }
        if now > horizon && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            delivered += 1;
            lat_sum += d.latency();
            if d.mode == DeliveryMode::Circuit {
                on_circuit += 1;
            }
        }
        now += 1;
        assert!(now < 5_000_000, "run did not drain");
    }

    let s = net.stats();
    println!("delivered {delivered}/{total_sends} messages by cycle {now}");
    println!(
        "  over circuits: {on_circuit} ({:.1}%)   wormhole: {}",
        100.0 * on_circuit as f64 / delivered as f64,
        delivered - on_circuit
    );
    println!(
        "  mean latency: {:.1} cycles",
        lat_sum as f64 / delivered as f64
    );
    println!(
        "  circuits established: {}   torn down: {}   setup failures: {}",
        s.setups_ok, s.teardowns, s.setups_failed
    );
    assert_eq!(delivered, total_sends, "CARP must deliver everything");
    assert!(
        on_circuit * 2 > delivered,
        "with prefetched circuits, most halo traffic rides the wave switches"
    );
    println!("OK: phased establish/send/teardown worked end to end.");
}
