//! Visualize the wave plane: establish a few circuits on an 8×8 mesh and
//! print the ASCII lane maps of both wave switches plus the circuit list.
//!
//! ```sh
//! cargo run --release --example visualize
//! ```

use wavesim::core::render::{render_circuits, render_lane_map};
use wavesim::core::{LaneId, WaveConfig, WaveNetwork};
use wavesim::network::Message;
use wavesim::topology::{Coords, Topology};

fn main() {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());

    // A broken cable in the middle of the board.
    let victim = topo.node(Coords::new(&[3, 3]));
    let port = wavesim::topology::PortDir::new(0, wavesim::topology::Dir::Plus);
    for s in 1..=net.config().k {
        net.inject_lane_fault(LaneId::new(topo.link_id(victim, port), s))
            .expect("fault a known-good lane");
    }

    // A handful of circuits, including one that must dodge the fault.
    let sends = [
        ([0u16, 0u16], [7u16, 0u16]),
        ([0, 7], [7, 7]),
        ([2, 3], [6, 3]), // crosses the faulty region
        ([5, 1], [5, 6]),
    ];
    for (i, (s, d)) in sends.iter().enumerate() {
        let src = topo.node(Coords::new(s));
        let dest = topo.node(Coords::new(d));
        net.send(0, Message::new(i as u64, src, dest, 64, 0));
    }
    let mut now = 0;
    while net.busy() && now < 100_000 {
        net.tick(now);
        now += 1;
    }
    assert!(!net.busy());

    print!("{}", render_circuits(&net));
    println!();
    for s in 1..=net.config().k {
        print!("{}", render_lane_map(&net, s));
        println!();
    }
    println!("(note the x-marked faulty link at (3,3)->(4,3): the probe routed around it)");
}
